file(REMOVE_RECURSE
  "CMakeFiles/fig10_gflops_per_watt.dir/fig10_gflops_per_watt.cpp.o"
  "CMakeFiles/fig10_gflops_per_watt.dir/fig10_gflops_per_watt.cpp.o.d"
  "CMakeFiles/fig10_gflops_per_watt.dir/fig_common.cpp.o"
  "CMakeFiles/fig10_gflops_per_watt.dir/fig_common.cpp.o.d"
  "fig10_gflops_per_watt"
  "fig10_gflops_per_watt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gflops_per_watt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
