// Race coverage for the service submission path (run under the TSan
// preset): concurrent producers against the drain loop, with a chaos
// thread churning big park/withdraw cycles — the wall-clock analogue of a
// node draining and rejoining while submissions keep arriving. The ledger
// invariant begins == ends + cancels + reclaims + rejections, extended to
// the queue (pushed == drained == admitted), must survive the churn.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/admission.hpp"
#include "service/pump.hpp"
#include "service/queue.hpp"

namespace rda::service {
namespace {

TEST(ServicePump, BatchedAndPerCallBothCompleteAllOps) {
  for (const bool batched : {false, true}) {
    PumpConfig cfg;
    cfg.producers = 2;
    cfg.ops_per_producer = 3000;
    cfg.batched = batched;
    cfg.batch_max = 128;
    const PumpResult result = run_pump(cfg);
    EXPECT_EQ(result.ops, 6000u);
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_GT(result.mops, 0.0);
  }
}

TEST(ServiceRace, DrainRejoinRacesConcurrentSubmissions) {
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 8000;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  constexpr double kCapacity = 15360.0 * 1024.0;

  core::AdmissionConfig cc;
  cc.llc_capacity_bytes = kCapacity;
  cc.policy = core::PolicyKind::kStrict;
  core::AdmissionCore core(cc);
  core.set_batch_waker([](const auto&) {});

  SubmissionQueue<sim::ThreadId> queue(1 << 12);
  std::atomic<bool> drained_all{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const auto thread =
            static_cast<sim::ThreadId>(p * kPerProducer + i);
        while (!queue.push(thread)) std::this_thread::yield();
      }
    });
  }

  // The drain loop: one batched admission + release pass per pop.
  std::thread drainer([&] {
    std::vector<sim::ThreadId> batch;
    std::uint64_t drained = 0;
    std::uint64_t admitted = 0;
    while (drained < kTotal) {
      batch.clear();
      if (queue.pop_batch(batch, 256) == 0) {
        std::this_thread::yield();
        continue;
      }
      drained += batch.size();
      std::vector<core::AdmitRequest> requests;
      requests.reserve(batch.size());
      for (const sim::ThreadId thread : batch) {
        core::AdmitRequest r;
        r.thread = thread;
        r.process = thread;
        r.demands = {{ResourceKind::kLLC, 1.0e-4 * kCapacity}};
        requests.push_back(std::move(r));
      }
      const auto tickets = core.admit_batch(std::move(requests), 0.0);
      std::vector<core::PeriodId> ids;
      ids.reserve(tickets.size());
      for (const auto& ticket : tickets) {
        ASSERT_TRUE(ticket.admitted);
        ids.push_back(ticket.id);
      }
      admitted += ids.size();
      core.release_batch(ids, 0.0);
    }
    EXPECT_EQ(drained, kTotal);
    EXPECT_EQ(admitted, kTotal);
    drained_all.store(true);
  });

  // Chaos: a "node" repeatedly drains (parks a big request that cannot
  // co-fit with its previous one) and rejoins (withdraws or releases) —
  // keeping the core bouncing between the calm and slow lanes.
  std::thread chaos([&] {
    const auto base = static_cast<sim::ThreadId>(kTotal + 10);
    core::PeriodId held = core::kInvalidPeriod;
    for (int i = 0; i < 600 && !drained_all.load(); ++i) {
      core::AdmitRequest big;
      big.thread = base + static_cast<sim::ThreadId>(i);
      big.process = big.thread;
      big.demands = {{ResourceKind::kLLC, 0.55 * kCapacity}};
      const core::AdmitTicket ticket = core.admit(std::move(big), 0.0);
      if (ticket.admitted) {
        if (held != core::kInvalidPeriod) core.release(held, {}, 0.0);
        held = ticket.id;
      } else {
        const core::WithdrawResult result = core.try_withdraw(ticket.id, 0.0);
        if (result == core::WithdrawResult::kAlreadyAdmitted) {
          core.release(ticket.id, {}, 0.0);
        }
      }
      std::this_thread::yield();
    }
    if (held != core::kInvalidPeriod) core.release(held, {}, 0.0);
  });

  for (std::thread& t : producers) t.join();
  drainer.join();
  chaos.join();

  // Quiescent audit + the extended ledger: nothing lost, nothing doubled.
  const core::AdmissionCore::AuditReport audit = core.audit();
  EXPECT_TRUE(audit.ok) << audit.detail;
  const core::MonitorStats stats = core.stats();
  EXPECT_EQ(stats.begins, stats.ends + stats.cancels + stats.reclaims +
                              stats.rejections);
  EXPECT_GE(stats.begins, kTotal);
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace rda::service
