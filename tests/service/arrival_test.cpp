#include "service/arrival.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "service/frontend.hpp"

namespace rda::service {
namespace {

std::vector<Arrival> take(ArrivalGenerator& gen, std::size_t n) {
  std::vector<Arrival> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(gen.next());
  return out;
}

TEST(Arrival, SameSeedReproducesTheStreamBitForBit) {
  ArrivalConfig cfg;
  cfg.shape = ArrivalShape::kBursty;
  cfg.seed = 42;
  ArrivalGenerator a(cfg);
  ArrivalGenerator b(cfg);
  for (int i = 0; i < 1000; ++i) {
    const Arrival x = a.next();
    const Arrival y = b.next();
    EXPECT_EQ(x.time, y.time);
    EXPECT_EQ(x.seq, y.seq);
    EXPECT_EQ(x.tenant, y.tenant);
    EXPECT_EQ(x.demand_bytes, y.demand_bytes);
    EXPECT_EQ(x.service_seconds, y.service_seconds);
  }
}

TEST(Arrival, DifferentSeedsDiverge) {
  ArrivalConfig cfg;
  ArrivalGenerator a(cfg);
  cfg.seed = 2;
  ArrivalGenerator b(cfg);
  EXPECT_NE(a.next().time, b.next().time);
}

TEST(Arrival, EveryShapeHoldsItsMeanRate) {
  // 50k arrivals at rate 20k/s should span ~2.5 s for every shape (the
  // diurnal/bursty modulations preserve the long-run mean by design).
  for (const ArrivalShape shape :
       {ArrivalShape::kPoisson, ArrivalShape::kDiurnal,
        ArrivalShape::kBursty}) {
    ArrivalConfig cfg;
    cfg.shape = shape;
    cfg.rate = 20000.0;
    cfg.seed = 7;
    ArrivalGenerator gen(cfg);
    const auto arrivals = take(gen, 50000);
    const double span = arrivals.back().time;
    const double empirical_rate = 50000.0 / span;
    EXPECT_NEAR(empirical_rate, cfg.rate, 0.15 * cfg.rate)
        << to_string(shape);
    // Time is strictly increasing and seq is dense.
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      ASSERT_LT(arrivals[i - 1].time, arrivals[i].time);
      ASSERT_EQ(arrivals[i].seq, i);
    }
  }
}

TEST(Arrival, BurstyIsBurstierThanPoisson) {
  // Compare the squared coefficient of variation of inter-arrival gaps:
  // Poisson gives ~1; an MMPP with an 8x ON state is clearly above it.
  const auto cv2 = [](ArrivalShape shape) {
    ArrivalConfig cfg;
    cfg.shape = shape;
    cfg.seed = 11;
    ArrivalGenerator gen(cfg);
    const auto arrivals = take(gen, 40000);
    double prev = 0.0, sum = 0.0, sum2 = 0.0;
    for (const Arrival& a : arrivals) {
      const double gap = a.time - prev;
      prev = a.time;
      sum += gap;
      sum2 += gap * gap;
    }
    const double n = static_cast<double>(arrivals.size());
    const double mean = sum / n;
    return (sum2 / n - mean * mean) / (mean * mean);
  };
  EXPECT_NEAR(cv2(ArrivalShape::kPoisson), 1.0, 0.2);
  EXPECT_GT(cv2(ArrivalShape::kBursty), 1.5);
}

TEST(Arrival, HotTenantGetsItsShare) {
  ArrivalConfig cfg;
  cfg.tenants = 8;
  cfg.hot_tenant_share = 0.4;
  cfg.seed = 13;
  ArrivalGenerator gen(cfg);
  std::size_t hot = 0;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    const Arrival a = gen.next();
    ASSERT_GE(a.tenant, 1u);
    ASSERT_LE(a.tenant, cfg.tenants);
    if (a.tenant == 1) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / static_cast<double>(n), 0.4, 0.03);
}

TEST(Arrival, DemandAndServiceStayInsideTheSpread) {
  ArrivalConfig cfg;
  cfg.demand_mean_bytes = 1.0e6;
  cfg.demand_spread = 0.5;
  cfg.service_mean_seconds = 1.0e-3;
  cfg.service_spread = 0.25;
  ArrivalGenerator gen(cfg);
  for (int i = 0; i < 5000; ++i) {
    const Arrival a = gen.next();
    ASSERT_GE(a.demand_bytes, 0.5e6);
    ASSERT_LE(a.demand_bytes, 1.5e6);
    ASSERT_GE(a.service_seconds, 0.75e-3);
    ASSERT_LE(a.service_seconds, 1.25e-3);
  }
}

TEST(Arrival, ZeroMeanDeclaresNothingAndDrawsNothing) {
  // A zero bw/watts mean must not consume RNG state, so an LLC-only stream
  // stays bit-identical no matter what the (unused) spreads are set to.
  ArrivalConfig plain;
  plain.seed = 7;
  ArrivalConfig tweaked = plain;
  tweaked.bw_spread = 0.9;
  tweaked.watts_spread = 0.1;
  ArrivalGenerator a(plain);
  ArrivalGenerator b(tweaked);
  for (int i = 0; i < 2000; ++i) {
    const Arrival x = a.next();
    const Arrival y = b.next();
    EXPECT_EQ(x.bw_bytes_per_sec, 0.0);
    EXPECT_EQ(x.watts, 0.0);
    EXPECT_EQ(x.time, y.time);
    EXPECT_EQ(x.tenant, y.tenant);
    EXPECT_EQ(x.demand_bytes, y.demand_bytes);
    EXPECT_EQ(x.service_seconds, y.service_seconds);
  }
}

TEST(Arrival, MultiResourceDemandsStayInsideTheirSpread) {
  ArrivalConfig cfg;
  cfg.bw_mean_bytes_per_sec = 4.0e9;
  cfg.bw_spread = 0.5;
  cfg.watts_mean = 8.0;
  cfg.watts_spread = 0.25;
  ArrivalGenerator gen(cfg);
  ArrivalGenerator twin(cfg);
  for (int i = 0; i < 5000; ++i) {
    const Arrival a = gen.next();
    ASSERT_GE(a.bw_bytes_per_sec, 2.0e9);
    ASSERT_LE(a.bw_bytes_per_sec, 6.0e9);
    ASSERT_GE(a.watts, 6.0);
    ASSERT_LE(a.watts, 10.0);
    // The extended stream is as reproducible as the LLC-only one.
    const Arrival b = twin.next();
    ASSERT_EQ(a.bw_bytes_per_sec, b.bw_bytes_per_sec);
    ASSERT_EQ(a.watts, b.watts);
  }
}

TEST(ArrivalTrace, CsvRoundTripIsBitExact) {
  // record → write → from_csv must reproduce every field bit-for-bit:
  // %.17g survives the double round trip, and the multi-resource columns
  // ride along.
  ArrivalConfig cfg;
  cfg.shape = ArrivalShape::kBursty;
  cfg.seed = 91;
  cfg.bw_mean_bytes_per_sec = 4.0e9;
  cfg.watts_mean = 8.0;
  ArrivalGenerator gen(cfg);
  const std::vector<Arrival> recorded = record_arrivals(gen, 2000);

  const std::string path =
      std::string(::testing::TempDir()) + "/arrival_roundtrip.csv";
  write_arrival_trace_csv(path, recorded);
  TraceArrivals replay = TraceArrivals::from_csv(path);
  std::filesystem::remove(path);

  ASSERT_EQ(replay.size(), recorded.size());
  for (const Arrival& want : recorded) {
    const Arrival got = replay.next();
    ASSERT_EQ(got.time, want.time);
    ASSERT_EQ(got.seq, want.seq);
    ASSERT_EQ(got.tenant, want.tenant);
    ASSERT_EQ(got.demand_bytes, want.demand_bytes);
    ASSERT_EQ(got.service_seconds, want.service_seconds);
    ASSERT_EQ(got.bw_bytes_per_sec, want.bw_bytes_per_sec);
    ASSERT_EQ(got.watts, want.watts);
  }
  EXPECT_EQ(replay.remaining(), 0u);
}

TEST(ArrivalTrace, ReplayDrivesTheFrontEndIdenticallyToTheLiveStream) {
  // The service layer cannot tell a replayed capture from the generator
  // it was recorded from: same checksum, same stats — including a replay
  // that went through the CSV round trip.
  ArrivalConfig arr;
  arr.shape = ArrivalShape::kPoisson;
  arr.rate = 5000.0;
  arr.seed = 53;
  arr.tenants = 4;
  arr.demand_mean_bytes = 2.0 * 1024.0 * 1024.0;
  arr.service_mean_seconds = 2.0e-3;
  ServiceConfig cfg;
  cfg.nodes = 4;
  cfg.node_llc_bytes = 15.0 * 1024.0 * 1024.0;

  ArrivalGenerator recording(arr);
  const std::vector<Arrival> trace = record_arrivals(recording, 5000);
  const std::string path =
      std::string(::testing::TempDir()) + "/arrival_replay.csv";
  write_arrival_trace_csv(path, trace);

  ArrivalGenerator live(arr);
  ServiceFrontEnd live_service(cfg);
  const ServiceReport live_report = live_service.run(live, 5000);

  TraceArrivals replay = TraceArrivals::from_csv(path);
  std::filesystem::remove(path);
  ServiceFrontEnd replay_service(cfg);
  const ServiceReport replay_report = replay_service.run(replay, 5000);

  EXPECT_EQ(replay_report.checksum, live_report.checksum);
  EXPECT_EQ(replay_report.stats.completed, live_report.stats.completed);
  EXPECT_EQ(replay_report.stats.enqueued, live_report.stats.enqueued);
  EXPECT_EQ(replay_report.elapsed_seconds, live_report.elapsed_seconds);
  EXPECT_EQ(replay_report.admission_latency.p99(),
            live_report.admission_latency.p99());
}

}  // namespace
}  // namespace rda::service
