// Minimal ASCII table rendering for the benchmark harness output.
//
// Every bench binary prints the rows/series of the paper exhibit it
// regenerates; this class keeps that output aligned and uniform.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rda::util {

/// Column-aligned text table. Cells are strings; numeric convenience
/// overloads format with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add_cell calls fill it left to right.
  Table& begin_row();
  Table& add_cell(std::string text);
  Table& add_cell(const char* text);
  /// Fixed-precision numeric cell (default 2 decimal places).
  Table& add_cell(double value, int precision = 2);
  Table& add_cell(std::uint64_t value);
  Table& add_cell(int value);

  /// Renders with a header underline and two-space column gaps.
  std::string render() const;
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rda::util
