// Scheduling policies (§3.3).
//
// Algorithm 1 computes outcome = (capacity − usage) − demand and asks
// apply_policy(outcome, resource) whether the period may run. The paper
// ships two configurations:
//   * RDA:Strict      — deny anything that would exceed capacity
//                       (outcome >= 0). Maximum resource efficiency.
//   * RDA:Compromise  — allow while usage + demand <= x × capacity, i.e.
//                       outcome >= −(x−1) × capacity, with x = 2 by default.
//                       Trades some efficiency for concurrency.
// "The policy allows users to specify that a certain amount of
//  oversubscription is allowed to provide more concurrency."
#pragma once

#include <memory>
#include <string>

#include "core/resource_monitor.hpp"

namespace rda::core {

/// Named configurations used throughout the benches and tests.
enum class PolicyKind {
  kLinuxDefault,  ///< no admission control (baseline; gate never attached)
  kStrict,        ///< RDA: Strict
  kCompromise,    ///< RDA: Compromise (oversubscription factor x)
};

std::string to_string(PolicyKind kind);

/// apply_policy(outcome, resource) of Algorithm 1.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// `outcome` is remaining-after-admission (may be negative); `resource`
  /// carries capacity and current usage.
  virtual bool allow(double outcome, const ResourceState& resource) const = 0;

  /// Total aggregate demand this policy admits against `capacity` — the
  /// budget the striped resource monitor partitions across its stripes.
  /// allow(remaining − demand) ⟺ usage + demand ≤ admission_bound(capacity),
  /// which is what lets the lock-free fast lane replace the policy check
  /// with an atomic budget acquisition.
  virtual double admission_bound(double capacity) const { return capacity; }

  virtual std::string name() const = 0;
};

/// RDA:Strict — never oversubscribe.
class StrictPolicy final : public SchedulingPolicy {
 public:
  bool allow(double outcome, const ResourceState& resource) const override;
  std::string name() const override { return "RDA:Strict"; }
};

/// RDA:Compromise — allow up to factor × capacity of aggregate demand.
class CompromisePolicy final : public SchedulingPolicy {
 public:
  explicit CompromisePolicy(double oversubscription_factor = 2.0);
  bool allow(double outcome, const ResourceState& resource) const override;
  double admission_bound(double capacity) const override;
  std::string name() const override;
  double factor() const { return factor_; }

 private:
  double factor_;
};

/// Admits everything (useful for overhead-only measurements: the API calls
/// are made, the predicate always says yes).
class AlwaysAdmitPolicy final : public SchedulingPolicy {
 public:
  bool allow(double outcome, const ResourceState& resource) const override;
  double admission_bound(double capacity) const override;
  std::string name() const override { return "AlwaysAdmit"; }
};

/// Factory for the named configurations. kLinuxDefault maps to AlwaysAdmit
/// (callers normally just skip attaching the gate for the baseline).
std::unique_ptr<SchedulingPolicy> make_policy(PolicyKind kind,
                                              double oversubscription = 2.0);

}  // namespace rda::core
