#!/usr/bin/env bash
# Tier-1 gate: full build + full test suite, then the concurrency-sensitive
# runtime gate tests again under ThreadSanitizer.
#
#   scripts/tier1.sh            # both stages
#   scripts/tier1.sh --no-tsan  # skip the sanitizer stage
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
[[ "${1:-}" == "--no-tsan" ]] && run_tsan=0

echo "== tier-1: build + full test suite =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  echo "== tier-1: runtime gate + profiler pipeline tests under ThreadSanitizer =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)" --target runtime_test profiler_test trace_test
  ( cd build-tsan && ctest -R 'AdmissionGate|ProfilePipeline|TraceArena' \
      --output-on-failure -j "$(nproc)" )
fi

echo "== tier-1: profiler perf snapshot (BENCH_profiler.json) =="
# Small trace keeps the gate fast; the acceptance-scale run is
#   build/bench/micro_profiler --records 50000000 --jobs 4 --sample-rate 0.01
( cd build/bench && ./micro_profiler --records 2000000 --jobs 4 \
    --sample-rate 0.02 --out BENCH_profiler.json )

echo "tier-1 OK"
