// Adapter-parity suite: the sim gate (core::RdaScheduler) and the native
// gate (rt::AdmissionGate) are thin adapters over the same AdmissionCore —
// so one scripted period sequence, driven through both, must produce the
// IDENTICAL admit/deny/wake order (the lifecycle event stream at the core's
// obs choke point, compared by kind + label + demand) and identical final
// MonitorStats. Any divergence means an adapter grew scheduling logic of
// its own. Runs under TSan in tier-1 (scripts/tier1.sh).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/rda_scheduler.hpp"
#include "obs/recorder.hpp"
#include "runtime/gate.hpp"
#include "sim/calibration.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace rda {
namespace {

using namespace std::chrono_literals;

constexpr double kCapacity = 15.0 * 1024.0 * 1024.0;
constexpr int kMaxVThreads = 8;

/// One scripted operation on a virtual thread. Labels carry the vthread
/// identity, because the two substrates use different thread-id spaces.
struct Op {
  enum Kind { kBegin, kEnd, kTryBegin } kind = kBegin;
  int vt = 0;
  double demand = 0.0;     ///< bytes (begins only)
  bool expect_admit = true;  ///< begins: immediately admitted?
  int group = -1;          ///< pool group id; -1 = singleton process
};

Op begin(int vt, double mb, bool expect_admit, int group = -1) {
  return {Op::kBegin, vt, mb * 1024.0 * 1024.0, expect_admit, group};
}
Op end(int vt) { return {Op::kEnd, vt, 0.0, false, -1}; }
Op try_deny(int vt, double mb) {
  return {Op::kTryBegin, vt, mb * 1024.0 * 1024.0, false, -1};
}

std::string vt_label(int vt) { return "vt" + std::to_string(vt); }

/// Exercises every lifecycle path: immediate admit, block + FIFO wake,
/// try-begin cancel, liveness force-admit, and §3.4 pool group pause.
std::vector<Op> full_script() {
  return {
      // A: block and wake on release.
      begin(0, 10.0, true), begin(1, 8.0, false), begin(2, 4.0, true),
      end(0), end(2), end(1),
      // B: try_begin deny -> withdraw.
      begin(0, 12.0, true), try_deny(1, 8.0), end(0),
      // C: liveness force-admit of an impossible demand.
      begin(3, 20.0, true), end(3),
      // D: pool group pause and group wake (group 0).
      begin(0, 12.0, true), begin(4, 8.0, false, 0), begin(5, 2.0, false, 0),
      end(0), end(4), end(5),
      // E: multi-waiter wake scan on one release.
      begin(0, 14.0, true), begin(1, 3.0, false), begin(2, 10.0, false),
      begin(3, 6.0, false), end(0), end(1), end(2), end(3),
  };
}

sim::ProcessId process_of(const Op& op) {
  return op.group >= 0 ? static_cast<sim::ProcessId>(1000 + op.group)
                       : static_cast<sim::ProcessId>(op.vt);
}

/// (kind, label, demand) triple — the substrate-neutral projection of the
/// event stream. Thread/process/period ids and timestamps differ between
/// substrates by construction.
struct EventKey {
  obs::EventKind kind;
  std::string label;
  double demand;

  bool operator==(const EventKey& o) const {
    return kind == o.kind && label == o.label && demand == o.demand;
  }
};

std::vector<EventKey> keys_of(const std::vector<obs::Event>& events) {
  std::vector<EventKey> keys;
  keys.reserve(events.size());
  for (const obs::Event& e : events) {
    keys.push_back({e.kind, std::string(e.label), e.demand});
  }
  return keys;
}

/// Drives the script through the sim adapter, single-threaded, calling the
/// PhaseGate hooks directly (no engine: admission order is what is under
/// test, not timing).
class SimDriver {
 public:
  SimDriver(const std::vector<Op>& script, core::RdaOptions options) {
    options.trace_sink = &recorder_;
    core::RdaScheduler gate(kCapacity, sim::Calibration{}, options);
    gate.attach(waker_);
    gate.mark_pool(1000);  // group 0
    std::array<sim::PhaseSpec, kMaxVThreads> active_phase;
    std::array<sim::ProcessId, kMaxVThreads> active_process{};
    double now = 0.0;
    for (const Op& op : script) {
      now += 1.0;
      const auto vt = static_cast<sim::ThreadId>(op.vt);
      switch (op.kind) {
        case Op::kBegin: {
          sim::PhaseSpec phase;
          phase.wss_bytes = static_cast<std::uint64_t>(op.demand);
          phase.reuse = ReuseLevel::kHigh;
          phase.marked = true;
          phase.label = vt_label(op.vt);
          active_phase[op.vt] = phase;
          active_process[op.vt] = process_of(op);
          const sim::BeginResult r =
              gate.on_phase_begin(vt, process_of(op), phase, now);
          EXPECT_EQ(r.admit, op.expect_admit) << "sim begin " << phase.label;
          break;
        }
        case Op::kTryBegin: {
          sim::PhaseSpec phase;
          phase.wss_bytes = static_cast<std::uint64_t>(op.demand);
          phase.reuse = ReuseLevel::kHigh;
          phase.marked = true;
          phase.label = vt_label(op.vt);
          const sim::BeginResult r =
              gate.on_phase_begin(vt, process_of(op), phase, now);
          EXPECT_FALSE(r.admit) << "sim try_begin " << phase.label;
          if (!r.admit) {
            const auto id = gate.core().active_for_thread(vt);
            EXPECT_TRUE(id.has_value());
            if (id.has_value()) {
              EXPECT_TRUE(gate.core().withdraw(*id, now));
            }
          }
          break;
        }
        case Op::kEnd:
          gate.on_phase_end(vt, active_process[op.vt], active_phase[op.vt],
                            sim::PhaseObservation{}, now);
          break;
      }
    }
    stats_ = gate.monitor_stats();
    events_ = recorder_.events();
  }

  std::vector<EventKey> keys() const { return keys_of(events_); }
  const core::MonitorStats& stats() const { return stats_; }

 private:
  struct NullWaker final : sim::ThreadWaker {
    void wake(sim::ThreadId) override {}  // wake order is read from events
  };
  NullWaker waker_;
  obs::EventRecorder recorder_{1 << 12};
  core::MonitorStats stats_;
  std::vector<obs::Event> events_;
};

/// Drives the same script through the native gate with real OS threads.
/// Each begin runs on a fresh thread (its process-lifetime token is the
/// vthread's identity for that period); ends are issued by the driver —
/// the gate allows any thread to end a period. The driver serializes: an
/// expected-admit begin is joined before the next op, an expected-block
/// begin is waited for until its kBlock lands (waiting() rises), and a
/// parked vthread's grant is awaited before its period is ended. Event
/// order within a release is fixed by the gate mutex, so the recorded
/// stream is deterministic.
class NativeDriver {
 public:
  NativeDriver(const std::vector<Op>& script, rt::GateConfig config) {
    config.llc_capacity_bytes = kCapacity;
    config.trace_sink = &recorder_;
    rt::AdmissionGate gate(config);
    gate.mark_pool(1000);  // group 0

    std::array<std::atomic<core::PeriodId>, kMaxVThreads> ids{};
    std::array<std::atomic<bool>, kMaxVThreads> done{};
    std::array<std::optional<std::thread>, kMaxVThreads> parked;

    const auto settle = [&](int vt) {
      // The vthread's begin has returned (its grant consumed): safe to
      // end its period and to reuse its slot.
      while (!done[static_cast<std::size_t>(vt)].load(
          std::memory_order_acquire)) {
        std::this_thread::sleep_for(100us);
      }
      auto& t = parked[static_cast<std::size_t>(vt)];
      if (t.has_value()) {
        t->join();
        t.reset();
      }
    };

    for (const Op& op : script) {
      const auto slot = static_cast<std::size_t>(op.vt);
      switch (op.kind) {
        case Op::kBegin: {
          done[slot].store(false, std::memory_order_relaxed);
          const std::size_t waiting_before = gate.waiting();
          std::thread worker([&gate, &ids, &done, op, slot] {
            if (op.group >= 0) {
              gate.join_group(static_cast<std::uint32_t>(1000 + op.group));
            }
            const core::PeriodId id =
                gate.begin(ResourceKind::kLLC, op.demand, ReuseLevel::kHigh,
                           vt_label(op.vt));
            ids[slot].store(id, std::memory_order_relaxed);
            done[slot].store(true, std::memory_order_release);
          });
          if (op.expect_admit) {
            worker.join();
            EXPECT_TRUE(done[slot].load()) << "native begin " << op.vt;
          } else {
            // Park confirmed once the monitor holds the extra waiter.
            while (gate.waiting() <= waiting_before) {
              std::this_thread::sleep_for(100us);
            }
            parked[slot] = std::move(worker);
          }
          break;
        }
        case Op::kTryBegin: {
          std::thread worker([&gate, op] {
            const auto denied =
                gate.try_begin(ResourceKind::kLLC, op.demand,
                               ReuseLevel::kHigh, vt_label(op.vt));
            EXPECT_FALSE(denied.has_value()) << "native try_begin " << op.vt;
          });
          worker.join();
          break;
        }
        case Op::kEnd:
          settle(op.vt);
          gate.end(ids[slot].load(std::memory_order_relaxed));
          break;
      }
    }
    stats_ = gate.stats();
    events_ = recorder_.events();
  }

  std::vector<EventKey> keys() const { return keys_of(events_); }
  const core::MonitorStats& stats() const { return stats_.monitor; }

 private:
  obs::EventRecorder recorder_{1 << 12};
  rt::GateStats stats_;
  std::vector<obs::Event> events_;
};

void expect_stats_equal(const core::MonitorStats& sim_stats,
                        const core::MonitorStats& native_stats) {
  EXPECT_EQ(sim_stats.begins, native_stats.begins);
  EXPECT_EQ(sim_stats.ends, native_stats.ends);
  EXPECT_EQ(sim_stats.immediate_admissions,
            native_stats.immediate_admissions);
  EXPECT_EQ(sim_stats.blocks, native_stats.blocks);
  EXPECT_EQ(sim_stats.wakes, native_stats.wakes);
  EXPECT_EQ(sim_stats.forced_admissions, native_stats.forced_admissions);
  EXPECT_EQ(sim_stats.pool_disables, native_stats.pool_disables);
  EXPECT_EQ(sim_stats.pool_group_admissions,
            native_stats.pool_group_admissions);
  EXPECT_EQ(sim_stats.cancels, native_stats.cancels);
}

void run_parity(core::WakeOrder wake_order) {
  core::RdaOptions sim_options;
  sim_options.monitor.wake_order = wake_order;
  rt::GateConfig native_config;
  native_config.monitor.wake_order = wake_order;

  const SimDriver sim(full_script(), sim_options);
  const NativeDriver native(full_script(), native_config);

  const std::vector<EventKey> sim_keys = sim.keys();
  const std::vector<EventKey> native_keys = native.keys();
  ASSERT_EQ(sim_keys.size(), native_keys.size());
  for (std::size_t i = 0; i < sim_keys.size(); ++i) {
    EXPECT_TRUE(sim_keys[i] == native_keys[i])
        << "event " << i << ": sim " << to_string(sim_keys[i].kind) << "/"
        << sim_keys[i].label << "/" << sim_keys[i].demand << " vs native "
        << to_string(native_keys[i].kind) << "/" << native_keys[i].label
        << "/" << native_keys[i].demand;
  }
  expect_stats_equal(sim.stats(), native.stats());
  // The script resolves every period: nothing may be left over.
  EXPECT_EQ(sim.stats().begins,
            sim.stats().ends + sim.stats().cancels);
}

TEST(AdmissionParity, FifoWakeOrderIdenticalAcrossSubstrates) {
  run_parity(core::WakeOrder::kFifo);
}

TEST(AdmissionParity, BestFitWakeOrderIdenticalAcrossSubstrates) {
  run_parity(core::WakeOrder::kBestFitDemand);
}

}  // namespace
}  // namespace rda
