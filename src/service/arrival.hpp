// Open-loop arrival generation for the service front end.
//
// The ROADMAP's north star is a front end serving millions of users; the
// admission engine therefore has to be driven the way real traffic drives
// it — open loop, where arrivals keep coming regardless of how far behind
// the system is — not the closed-loop "submit, wait, submit" shape the
// figure benches use. A generator is a pure function of its seed: it
// streams arrivals one at a time in O(1) state, so a run over millions of
// short periods is reproducible bit-for-bit and two routing policies can
// be compared on the identical trace.
//
// Three arrival shapes, per the evaluation matrix:
//   * Poisson  — homogeneous rate λ (exponential inter-arrival gaps),
//   * diurnal  — nonhomogeneous λ(t) = λ·(1 + A·sin(2πt/T)) via thinning
//                (the classic day/night load swing, compressed to T),
//   * bursty   — two-state MMPP: an ON state at λ·burst multiplier and a
//                quiet OFF state, with exponential state holding times.
//
// Beyond the synthetic shapes, `TraceArrivals` replays a recorded
// (t, tenant, demand, service, bw, watts) tuple stream from a CSV file —
// so a production capture (or a recorded synthetic run) is a reproducible
// input: record once with `record_arrivals` + `write_arrival_trace_csv`,
// replay forever, bit-for-bit.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace rda::service {

enum class ArrivalShape {
  kPoisson,
  kDiurnal,
  kBursty,
};

std::string_view to_string(ArrivalShape shape);

/// Adversarial tenant behaviors layered over any base shape. The transform
/// applies AFTER the base draw, so a kNone stream is bit-identical to one
/// generated before this extension existed.
enum class AdversaryKind {
  kNone,
  /// Declares factor× the working set it will actually touch — reserving
  /// LLC it never fills, starving honest tenants at admission.
  kWssInflator,
  /// Touches factor× the working set it declares — slipping past admission
  /// cheap, then thrashing the nodes it lands on.
  kUnderDeclarer,
  /// Splits every request into `churn_pieces` back-to-back stubs (full
  /// declared WSS each, 1/pieces of the service time) — same work, pieces×
  /// the admission/audit traffic.
  kChurn,
};

std::string_view to_string(AdversaryKind kind);

struct AdversaryConfig {
  AdversaryKind kind = AdversaryKind::kNone;
  /// The misbehaving tenant (1-based; others in the stream stay honest).
  std::uint64_t tenant = 1;
  /// Inflation / under-declaration severity (observed-vs-declared ratio is
  /// 1/factor for the inflator, factor for the under-declarer).
  double factor = 8.0;
  std::uint32_t churn_pieces = 8;
};

/// One submission hitting the front door.
struct Arrival {
  double time = 0.0;             ///< seconds since stream start
  std::uint64_t seq = 0;         ///< 0-based arrival index
  std::uint64_t tenant = 1;      ///< 1-based tenant id (locality key)
  double demand_bytes = 0.0;     ///< declared LLC working set
  double service_seconds = 0.0;  ///< base service time once admitted
  double bw_bytes_per_sec = 0.0; ///< declared DRAM bandwidth (0 = none)
  double watts = 0.0;            ///< declared package power (0 = none)
  /// Working set the request will ACTUALLY touch; 0 = the declaration is
  /// truthful. Only adversarial streams set it — it is what the service
  /// layer's occupancy model reports to the audit path.
  double true_demand_bytes = 0.0;
};

struct ArrivalConfig {
  ArrivalShape shape = ArrivalShape::kPoisson;
  /// Long-run mean arrival rate (arrivals/second) for every shape — the
  /// diurnal and bursty modulations preserve this mean, so shapes are
  /// compared at equal offered load.
  double rate = 20000.0;
  std::uint64_t seed = 1;

  /// Tenants draw 1..tenants; tenant 1 is "hot" and receives
  /// `hot_tenant_share` of the traffic (its reuse makes it the
  /// LLC-hit-sensitive tenant locality routing is supposed to help).
  std::uint32_t tenants = 8;
  double hot_tenant_share = 0.4;

  /// Declared demand ~ uniform in mean·(1 ± spread); same for service time.
  double demand_mean_bytes = 2.0 * 1024.0 * 1024.0;
  double demand_spread = 0.5;
  double service_mean_seconds = 2.0e-3;
  double service_spread = 0.5;

  /// Multi-resource demands, same uniform jitter. A zero mean means the
  /// stream declares none of that resource AND draws nothing from the RNG
  /// for it, so pre-existing (LLC-only) streams stay bit-identical.
  double bw_mean_bytes_per_sec = 0.0;
  double bw_spread = 0.5;
  double watts_mean = 0.0;
  double watts_spread = 0.5;

  /// kDiurnal: one "day" lasts this long; rate swings ±amplitude around
  /// the mean. amplitude must stay < 1 so λ(t) never goes negative.
  double diurnal_period_seconds = 1.0;
  double diurnal_amplitude = 0.8;

  /// kBursty: ON-state rate is `burst_multiplier`× the OFF-state rate;
  /// the process spends `burst_fraction` of its time ON; ON episodes last
  /// `burst_mean_seconds` on average (exponential holding times).
  double burst_multiplier = 8.0;
  double burst_fraction = 0.125;
  double burst_mean_seconds = 0.02;

  /// Adversarial-tenant overlay (kNone = every tenant honest; the stream
  /// is then bit-identical to the pre-adversary generator).
  AdversaryConfig adversary{};
};

/// Anything that can feed the front end one arrival at a time: the seeded
/// synthetic generators and recorded-trace replay share this face, so the
/// service layer cannot tell a live stream from a replayed capture.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;
  virtual Arrival next() = 0;
};

/// Streams the arrival process defined by the config. next() is O(1);
/// calling it n times yields the first n arrivals of the (infinite) trace.
class ArrivalGenerator final : public ArrivalSource {
 public:
  explicit ArrivalGenerator(ArrivalConfig config);

  Arrival next() override;

  const ArrivalConfig& config() const { return config_; }

 private:
  double next_gap();

  ArrivalConfig config_;
  util::Rng rng_;
  double time_ = 0.0;
  std::uint64_t seq_ = 0;
  // kBursty state machine.
  bool burst_on_ = false;
  double state_ends_ = 0.0;
  /// kChurn stubs awaiting emission (seq assigned when they leave, so the
  /// stream's seq stays dense and monotonic).
  std::deque<Arrival> pending_;
};

/// Replays a pre-recorded arrival stream. next() past the end is a check
/// failure — a replayed run must ask for exactly what was recorded.
class TraceArrivals final : public ArrivalSource {
 public:
  explicit TraceArrivals(std::vector<Arrival> arrivals);

  /// Loads a trace written by write_arrival_trace_csv (or any CSV with its
  /// header). Malformed rows and non-monotonic times are check failures —
  /// a corrupt trace must not silently replay as a different workload.
  static TraceArrivals from_csv(const std::string& path);

  Arrival next() override;

  std::size_t size() const { return arrivals_.size(); }
  std::size_t remaining() const { return arrivals_.size() - cursor_; }

 private:
  std::vector<Arrival> arrivals_;
  std::size_t cursor_ = 0;
};

/// Captures the next `count` arrivals of any source into a vector (the
/// recording half of the round trip).
std::vector<Arrival> record_arrivals(ArrivalSource& source,
                                     std::uint64_t count);

/// Writes a trace CSV (atomic tempfile+rename). Doubles are printed with
/// %.17g, so from_csv reproduces the recorded stream bit-for-bit.
void write_arrival_trace_csv(const std::string& path,
                             std::span<const Arrival> arrivals);

}  // namespace rda::service
