// power_cap — multi-resource admission exhibit: the energy budget as a real
// gated resource, validated against the Fig. 10 energy machinery.
//
//   power_cap [--quick] [--csv] [--jobs N] [--out BENCH_power.json]
//
// Two cells and their controls, all deterministic simulations:
//
//   * Power cap: 12 compute periods each declaring ~one core's dynamic
//     power (5.2 W) on the 12-core e5_2420 under a 21 W dynamic budget.
//     The gate must hold measured dynamic power (system energy minus the
//     machine's idle floor, over the makespan) within 5% of the cap, while
//     the ungated control proves the cap actually binds (it draws ~3x).
//   * Mixed workload: 6 LLC-heavy + 6 streaming periods. LLC-only
//     admission (the paper's predicate) sees the streams' tiny working
//     sets and co-schedules all of them; the all-must-fit combiner also
//     sees their DRAM appetite and keeps the memory system at its limit
//     instead of past it — surplus cores idle, same work, less energy, so
//     GFLOPS/W must improve by at least 5%.
//
// Emits BENCH_power.json and exits non-zero when either acceptance gate
// fails. --csv prints the four cells as fixed-precision rows (tier1.sh
// compares them byte-for-byte across --jobs values).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/rda_scheduler.hpp"
#include "exp/harness.hpp"
#include "sim/engine.hpp"
#include "util/atomic_file.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::util::MB;

/// Dynamic power budget for the cap cell: admits four 5.2 W periods
/// (20.8 W); a fifth would overflow to 26 W.
constexpr double kCapWatts = 21.0;
/// One core's active-minus-idle power under the default calibration —
/// what a compute-bound period actually adds to the package plane.
constexpr double kCoreDynamicWatts = 5.2;

struct Outcome {
  double gflops = 0.0;
  double gflops_per_watt = 0.0;
  double system_joules = 0.0;
  double makespan = 0.0;
  double total_flops = 0.0;
  double dynamic_watts = 0.0;
  std::uint64_t blocks = 0;
};

/// Power the machine burns with every core idle (core idle plane + uncore +
/// DRAM static): the floor the energy cap cannot touch. The gate budgets
/// the *dynamic* power on top of it.
double idle_floor_watts(const sim::EngineConfig& cfg) {
  return static_cast<double>(cfg.machine.cores) * cfg.calib.core_idle_power +
         cfg.calib.uncore_power + cfg.calib.dram_static_power;
}

Outcome collect(const sim::EngineConfig& cfg, sim::Engine& engine) {
  const sim::SimResult result = engine.run();
  Outcome o;
  o.gflops = result.gflops();
  o.gflops_per_watt = result.gflops_per_watt();
  o.system_joules = result.system_joules();
  o.makespan = result.makespan;
  o.total_flops = result.total_flops;
  o.blocks = result.gate_blocks;
  if (result.makespan > 0.0) {
    o.dynamic_watts = result.system_joules() / result.makespan -
                      idle_floor_watts(cfg);
  }
  return o;
}

/// 12 compute-bound periods (1 MB working sets: the LLC never blocks), each
/// declaring one core's dynamic power. Only the energy row can gate.
Outcome run_power_cell(bool capped, double flops) {
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  sim::Engine engine(cfg);

  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;
  options.energy_capacity_watts = capped ? kCapWatts : 0.0;
  core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                          cfg.calib, options);
  engine.set_gate(&gate);

  for (int i = 0; i < 12; ++i) {
    engine.add_thread(engine.create_process(),
                      sim::ProgramBuilder()
                          .period("compute", flops, MB(1), ReuseLevel::kHigh)
                          .watts(kCoreDynamicWatts)
                          .build());
  }
  return collect(cfg, engine);
}

/// 6 LLC-heavy periods (4 MB hot sets) + 6 streams (0.6 MB sets, 10 GB/s
/// appetite each against the 30 GB/s memory system). LLC-only admission
/// co-schedules every stream; the combiner holds streams to the machine's
/// bandwidth.
Outcome run_mixed_cell(bool multi_resource, double flops) {
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  sim::Engine engine(cfg);

  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;
  options.bandwidth_capacity =
      multi_resource ? cfg.machine.dram_bandwidth : 0.0;
  core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                          cfg.calib, options);
  engine.set_gate(&gate);

  for (int i = 0; i < 6; ++i) {
    engine.add_thread(engine.create_process(),
                      sim::ProgramBuilder()
                          .period("llc", 1.5 * flops, MB(4), ReuseLevel::kHigh)
                          .build());
  }
  for (int i = 0; i < 6; ++i) {
    engine.add_thread(engine.create_process(),
                      sim::ProgramBuilder()
                          .period_bw("stream", flops, MB(0.6),
                                     ReuseLevel::kLow, 10e9)
                          .build());
  }
  return collect(cfg, engine);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = exp::has_flag(argc, argv, "--quick");
  const bool csv = exp::has_flag(argc, argv, "--csv");
  const int jobs = exp::parse_jobs(argc, argv);
  const std::string out_path =
      exp::parse_string_flag(argc, argv, "--out", "BENCH_power.json");
  const double flops = quick ? 2e8 : 1e9;

  // Cells 0/1: power cap on/off. Cells 2/3: mixed multi-resource/LLC-only.
  std::vector<Outcome> cells(4);
  exp::run_cells(cells.size(), jobs, [&](std::size_t cell) {
    switch (cell) {
      case 0: cells[0] = run_power_cell(/*capped=*/true, flops); break;
      case 1: cells[1] = run_power_cell(/*capped=*/false, flops); break;
      case 2: cells[2] = run_mixed_cell(/*multi_resource=*/true, flops); break;
      case 3: cells[3] = run_mixed_cell(/*multi_resource=*/false, flops); break;
    }
  });
  const Outcome& capped = cells[0];
  const Outcome& uncapped = cells[1];
  const Outcome& multi = cells[2];
  const Outcome& llc_only = cells[3];

  if (csv) {
    std::printf("cell,dynamic_watts,gflops,gflops_per_watt,system_joules,"
                "makespan,blocks\n");
    const char* names[] = {"cap_on", "cap_off", "mixed_multi", "mixed_llc"};
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%s,%.4f,%.4f,%.4f,%.4f,%.6f,%llu\n", names[i],
                  cells[i].dynamic_watts, cells[i].gflops,
                  cells[i].gflops_per_watt, cells[i].system_joules,
                  cells[i].makespan,
                  static_cast<unsigned long long>(cells[i].blocks));
    }
    return 0;
  }

  const double efficiency_gain =
      llc_only.gflops_per_watt > 0.0
          ? multi.gflops_per_watt / llc_only.gflops_per_watt
          : 0.0;
  const bool cap_held = capped.dynamic_watts <= kCapWatts * 1.05;
  const bool cap_binds = uncapped.dynamic_watts > kCapWatts;
  // Same 2.4e9 flops either way; the sums differ only by integration-order
  // dust, so compare with a relative tolerance instead of bitwise.
  const bool work_conserved =
      std::abs(capped.total_flops - uncapped.total_flops) <=
      1e-9 * std::max(capped.total_flops, uncapped.total_flops);
  const bool mixed_gains = efficiency_gain >= 1.05;

  std::printf("=== Multi-resource admission: energy cap + mixed workload "
              "===\n\n");
  util::Table table({"cell", "dyn W", "GFLOPS", "GFLOPS/W", "system J",
                     "makespan [s]", "blocks"});
  const char* names[] = {"cap 21 W", "uncapped", "LLC+bandwidth",
                         "LLC only"};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    table.begin_row()
        .add_cell(names[i])
        .add_cell(cells[i].dynamic_watts, 1)
        .add_cell(cells[i].gflops, 2)
        .add_cell(cells[i].gflops_per_watt, 3)
        .add_cell(cells[i].system_joules, 0)
        .add_cell(cells[i].makespan, 2)
        .add_cell(cells[i].blocks);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("power cap:  %.1f W dynamic under a %.0f W budget (%s), "
              "uncapped draws %.1f W (%s)\n",
              capped.dynamic_watts, kCapWatts,
              cap_held ? "held" : "VIOLATED", uncapped.dynamic_watts,
              cap_binds ? "cap binds" : "CAP NEVER BOUND");
  std::printf("mixed cell: %.3f -> %.3f GFLOPS/W, %.2fx (%s)\n",
              llc_only.gflops_per_watt, multi.gflops_per_watt,
              efficiency_gain, mixed_gains ? "gate >= 1.05x met" : "BELOW "
                                                                   "1.05x");

  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"cap_watts\": %.1f,\n"
                "  \"capped_dynamic_watts\": %.4f,\n"
                "  \"uncapped_dynamic_watts\": %.4f,\n"
                "  \"cap_held\": %s,\n"
                "  \"cap_binds\": %s,\n"
                "  \"work_conserved\": %s,\n"
                "  \"capped_makespan\": %.6f,\n"
                "  \"uncapped_makespan\": %.6f,\n"
                "  \"mixed_multi_gflops_per_watt\": %.4f,\n"
                "  \"mixed_llc_only_gflops_per_watt\": %.4f,\n"
                "  \"mixed_efficiency_gain\": %.4f,\n"
                "  \"mixed_gain_floor\": 1.05\n"
                "}\n",
                kCapWatts, capped.dynamic_watts, uncapped.dynamic_watts,
                cap_held ? "true" : "false", cap_binds ? "true" : "false",
                work_conserved ? "true" : "false", capped.makespan,
                uncapped.makespan, multi.gflops_per_watt,
                llc_only.gflops_per_watt, efficiency_gain);
  try {
    rda::util::write_file_atomic(out_path, json);
    std::printf("wrote %s\n", out_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: %s\n", e.what());
  }
  return (cap_held && cap_binds && work_conserved && mixed_gains) ? 0 : 1;
}
