#include "predict/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace rda::predict {
namespace {

TEST(LogFit, RecoversExactLogCurve) {
  // y = 2 + 3 ln x
  std::vector<double> xs = {1, 2, 4, 8, 16};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.0 + 3.0 * std::log(x));
  const LogFit fit = fit_log(xs, ys);
  EXPECT_NEAR(fit.a, 2.0, 1e-9);
  EXPECT_NEAR(fit.b, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit(32.0), 2.0 + 3.0 * std::log(32.0), 1e-9);
}

TEST(LogFit, RejectsNonPositiveInputs) {
  const std::vector<double> xs = {0.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW(fit_log(xs, ys), std::invalid_argument);
  const std::vector<double> neg = {-1.0, 1.0};
  EXPECT_THROW(fit_log(neg, ys), std::invalid_argument);
}

TEST(PredictionAccuracy, MatchesPaperDefinition) {
  // 92% accuracy == 8% relative error.
  EXPECT_NEAR(prediction_accuracy(92.0, 100.0), 0.92, 1e-12);
  EXPECT_NEAR(prediction_accuracy(108.0, 100.0), 0.92, 1e-12);
  EXPECT_DOUBLE_EQ(prediction_accuracy(100.0, 100.0), 1.0);
  // Gross mispredictions clamp at zero, never negative.
  EXPECT_DOUBLE_EQ(prediction_accuracy(500.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(prediction_accuracy(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(prediction_accuracy(1.0, 0.0), 0.0);
}

TEST(WssPredictor, PrefersLogForLogData) {
  std::vector<double> xs = {8000, 15625, 32768};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(1e6 * std::log1p(x / 600.0));
  const WssPredictor predictor(xs, ys);
  EXPECT_EQ(predictor.family(), FitFamily::kLogarithmic);
  // Paper protocol: fit first three inputs, predict the fourth.
  const double actual = 1e6 * std::log1p(64000.0 / 600.0);
  const double predicted = predictor.predict(64000.0);
  EXPECT_GT(prediction_accuracy(predicted, actual), 0.97);
}

TEST(WssPredictor, PrefersLinearForLinearData) {
  std::vector<double> xs = {100, 200, 400, 800};
  std::vector<double> ys = {1000, 2000, 4000, 8000};
  const WssPredictor predictor(xs, ys);
  EXPECT_EQ(predictor.family(), FitFamily::kLinear);
  EXPECT_NEAR(predictor.predict(1600.0), 16000.0, 1.0);
}

TEST(WssPredictor, NoisyLogStillAccurate) {
  util::Rng rng(21);
  std::vector<double> xs = {8000, 15625, 32768};
  std::vector<double> ys;
  for (double x : xs) {
    ys.push_back(2e6 * std::log1p(x / 500.0) * (1.0 + 0.03 * rng.next_gaussian()));
  }
  const WssPredictor predictor(xs, ys);
  const double actual = 2e6 * std::log1p(64000.0 / 500.0);
  // The paper reports 80-95% accuracy on this protocol; with 3% measurement
  // noise on only three training points, 75% is the robust floor.
  EXPECT_GT(prediction_accuracy(predictor.predict(64000.0), actual), 0.75);
}

TEST(WssPredictor, NeverPredictsNegative) {
  // Strongly decreasing data could extrapolate below zero.
  std::vector<double> xs = {10, 100, 1000};
  std::vector<double> ys = {100.0, 50.0, 1.0};
  const WssPredictor predictor(xs, ys);
  EXPECT_GE(predictor.predict(1e9), 0.0);
}

TEST(WssPredictor, DescribeMentionsFamily) {
  std::vector<double> xs = {1, 2, 4};
  std::vector<double> ys = {0.0, 0.693, 1.386};  // ~ln(x)
  const WssPredictor predictor(xs, ys);
  EXPECT_NE(predictor.describe().find("ln(n)"), std::string::npos);
}

TEST(WssPredictor, RSquaredReported) {
  std::vector<double> xs = {1, 2, 4, 8};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(5.0 * std::log(x) + 1.0);
  const WssPredictor predictor(xs, ys);
  EXPECT_NEAR(predictor.r_squared(), 1.0, 1e-9);
}

}  // namespace
}  // namespace rda::predict
