// Byte and time unit helpers shared by all modules.
//
// The paper quantifies working-set sizes in megabytes (e.g. "MB(6.3)" in its
// Figure 4 API sample) and cache capacities in KBytes (Table 1). We keep all
// sizes in plain bytes (std::uint64_t) and all simulated time in seconds
// (double); these helpers exist so call sites read like the paper.
#pragma once

#include <cstdint>

namespace rda::util {

/// One kibibyte in bytes.
inline constexpr std::uint64_t kKiB = 1024ull;
/// One mebibyte in bytes.
inline constexpr std::uint64_t kMiB = 1024ull * 1024ull;
/// One gibibyte in bytes.
inline constexpr std::uint64_t kGiB = 1024ull * 1024ull * 1024ull;

/// Bytes from a (possibly fractional) KiB count, e.g. KB(256).
constexpr std::uint64_t KB(double kib) {
  return static_cast<std::uint64_t>(kib * static_cast<double>(kKiB));
}

/// Bytes from a (possibly fractional) MiB count, e.g. MB(6.3) as in paper Fig 4.
constexpr std::uint64_t MB(double mib) {
  return static_cast<std::uint64_t>(mib * static_cast<double>(kMiB));
}

/// Bytes from a (possibly fractional) GiB count.
constexpr std::uint64_t GB(double gib) {
  return static_cast<std::uint64_t>(gib * static_cast<double>(kGiB));
}

/// Bytes rendered back as fractional MiB (for tables mirroring the paper).
constexpr double bytes_to_mb(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

// --- time (seconds as double) ------------------------------------------------

constexpr double ns(double v) { return v * 1e-9; }
constexpr double us(double v) { return v * 1e-6; }
constexpr double ms(double v) { return v * 1e-3; }
constexpr double seconds(double v) { return v; }

constexpr double to_ms(double sec) { return sec * 1e3; }
constexpr double to_us(double sec) { return sec * 1e6; }
constexpr double to_ns(double sec) { return sec * 1e9; }

}  // namespace rda::util
