// Starvation-watchdog and orphan-reclamation tests: every rung of the
// degradation ladder (clamp -> forced oversubscribed admit -> reject), the
// three escalation triggers (wake rounds, wait time, substrate stall), and
// the lease/reap/sweep lifecycle — all on the shared AdmissionCore.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/admission.hpp"
#include "obs/recorder.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

double mb(double v) { return static_cast<double>(rda::util::MB(v)); }

AdmitRequest request(sim::ThreadId thread, double demand,
                     std::string label = "pp") {
  AdmitRequest r;
  r.thread = thread;
  r.process = thread;  // singleton groups, like the native gate's default
  r.demands = {{ResourceKind::kLLC, demand}};
  r.label = std::move(label);
  return r;
}

AdmissionConfig watchdog_config(WatchdogOptions watchdog) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  watchdog.enable = true;
  config.monitor.watchdog = watchdog;
  return config;
}

/// Drives one waitlist rescan: a small helper period is admitted and
/// immediately released (release is the only rescan site the substrates
/// exercise), aging every parked entry by one wake round.
void pulse(AdmissionCore& core, sim::ThreadId thread, double now) {
  const AdmitTicket t = core.admit(request(thread, mb(1), "pulse"), now);
  ASSERT_TRUE(t.admitted);
  core.release(t.id, {}, now + 0.01);
}

TEST(Watchdog, RungOneClampsInfeasibleDemandAndAdmits) {
  WatchdogOptions wd;
  wd.max_wake_rounds = 1;
  wd.clamp_fraction = 0.5;  // bound = 8 MB on the 16 MB LLC
  AdmissionCore core(watchdog_config(wd));
  obs::EventRecorder recorder;
  core.set_trace_sink(&recorder);
  std::vector<sim::ThreadId> woken;
  core.set_waker([&](sim::ThreadId tid) { woken.push_back(tid); });

  const AdmitTicket holder = core.admit(request(1, mb(6)), 0.0);
  ASSERT_TRUE(holder.admitted);
  const AdmitTicket big = core.admit(request(2, mb(24)), 0.1);
  ASSERT_FALSE(big.admitted);  // can never fit un-clamped

  pulse(core, 3, 0.2);  // one fruitless wake round -> escalation

  // Clamped to 8 MB, which fits next to the 6 MB holder.
  EXPECT_EQ(core.stats().demand_clamps, 1u);
  EXPECT_EQ(recorder.count(obs::EventKind::kDemandClamp), 1u);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 2u);
  EXPECT_TRUE(core.is_admitted(big.id));
  EXPECT_EQ(core.resources().usage(ResourceKind::kLLC), mb(6) + mb(8));
  // The clamp is a normal admission: no oversubscription was booked.
  EXPECT_EQ(core.resources().oversubscribed(ResourceKind::kLLC), 0.0);

  core.release(big.id, {}, 1.0);
  core.release(holder.id, {}, 1.1);
  EXPECT_TRUE(core.resources().effectively_free(ResourceKind::kLLC));
}

TEST(Watchdog, RungTwoForceAdmitsWithOversubscriptionTally) {
  WatchdogOptions wd;
  wd.max_wake_rounds = 1;
  wd.clamp = false;  // rung 1 disabled -> the escalation falls through
  AdmissionCore core(watchdog_config(wd));
  obs::EventRecorder recorder;
  core.set_trace_sink(&recorder);
  std::vector<sim::ThreadId> woken;
  core.set_waker([&](sim::ThreadId tid) { woken.push_back(tid); });

  const AdmitTicket holder = core.admit(request(1, mb(10)), 0.0);
  ASSERT_TRUE(holder.admitted);
  const AdmitTicket starved = core.admit(request(2, mb(12)), 0.1);
  ASSERT_FALSE(starved.admitted);

  pulse(core, 3, 0.2);

  EXPECT_EQ(core.stats().watchdog_force_admissions, 1u);
  EXPECT_EQ(core.stats().forced_admissions, 1u);
  EXPECT_EQ(recorder.count(obs::EventKind::kForceAdmit), 1u);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 2u);
  EXPECT_TRUE(core.is_admitted(starved.id));
  // The forced charge is mirrored into the oversubscription tally so the
  // conservation ledger can attribute the over-capacity usage.
  EXPECT_EQ(core.resources().usage(ResourceKind::kLLC), mb(22));
  EXPECT_EQ(core.resources().oversubscribed(ResourceKind::kLLC), mb(12));

  core.release(starved.id, {}, 1.0);
  EXPECT_EQ(core.resources().oversubscribed(ResourceKind::kLLC), 0.0);
  core.release(holder.id, {}, 1.1);
  EXPECT_TRUE(core.resources().effectively_free(ResourceKind::kLLC));
}

TEST(Watchdog, RungThreeRejectsAndSurfacesTheEviction) {
  WatchdogOptions wd;
  wd.max_wake_rounds = 1;
  wd.clamp = false;
  wd.force_admit = false;  // rungs 1+2 disabled -> straight to rejection
  AdmissionCore core(watchdog_config(wd));
  obs::EventRecorder recorder;
  core.set_trace_sink(&recorder);
  std::vector<sim::ThreadId> woken;
  core.set_waker([&](sim::ThreadId tid) { woken.push_back(tid); });

  const AdmitTicket holder = core.admit(request(1, mb(10)), 0.0);
  const AdmitTicket starved = core.admit(request(2, mb(12)), 0.1);
  ASSERT_FALSE(starved.admitted);

  pulse(core, 3, 0.2);

  EXPECT_EQ(core.stats().rejections, 1u);
  EXPECT_EQ(recorder.count(obs::EventKind::kReject), 1u);
  EXPECT_TRUE(woken.empty());  // a rejection never gets a Waker grant
  EXPECT_TRUE(core.monitor().waitlist().empty());
  EXPECT_TRUE(core.is_rejected(starved.id));
  const std::vector<sim::ThreadId> rejected = core.rejected_threads();
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0], 2u);

  // The owner consumes the rejection exactly once, by thread or by period.
  const std::optional<PeriodId> taken = core.take_rejection_for_thread(2);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(*taken, starved.id);
  EXPECT_FALSE(core.is_rejected(starved.id));
  EXPECT_FALSE(core.take_rejection(starved.id));

  core.release(holder.id, {}, 1.0);
  EXPECT_TRUE(core.resources().effectively_free(ResourceKind::kLLC));
}

TEST(Watchdog, TimeTriggerEscalatesOnlyAfterTheDeadline) {
  WatchdogOptions wd;
  wd.max_wake_rounds = 0;  // round trigger off: only time can escalate
  wd.max_wait_seconds = 1.0;
  wd.clamp_fraction = 0.5;
  AdmissionCore core(watchdog_config(wd));
  std::vector<sim::ThreadId> woken;
  core.set_waker([&](sim::ThreadId tid) { woken.push_back(tid); });

  core.admit(request(1, mb(6)), 0.0);
  const AdmitTicket big = core.admit(request(2, mb(24)), 0.1);
  ASSERT_FALSE(big.admitted);

  EXPECT_FALSE(core.watchdog_tick(0.5));  // not starved long enough yet
  EXPECT_TRUE(woken.empty());
  EXPECT_TRUE(core.watchdog_tick(2.0));
  EXPECT_EQ(core.stats().demand_clamps, 1u);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 2u);
}

TEST(Watchdog, StallTriggerEscalatesImmediately) {
  // The substrate proved nothing can progress: no round/time trigger is
  // configured, yet the stalled escalation must still move the waiter.
  WatchdogOptions wd;
  wd.clamp_fraction = 0.5;
  AdmissionCore core(watchdog_config(wd));
  std::vector<sim::ThreadId> woken;
  core.set_waker([&](sim::ThreadId tid) { woken.push_back(tid); });

  core.admit(request(1, mb(6)), 0.0);
  const AdmitTicket big = core.admit(request(2, mb(24)), 0.1);
  ASSERT_FALSE(big.admitted);

  EXPECT_TRUE(core.watchdog_stalled(0.5));
  EXPECT_TRUE(core.is_admitted(big.id));
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_FALSE(core.watchdog_stalled(0.6));  // nothing left to escalate
}

TEST(Watchdog, DisabledWatchdogNeverEscalates) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore core(config);

  core.admit(request(1, mb(10)), 0.0);
  const AdmitTicket starved = core.admit(request(2, mb(12)), 0.1);
  ASSERT_FALSE(starved.admitted);
  for (int i = 0; i < 5; ++i) pulse(core, 3, 0.2 + 0.1 * i);
  EXPECT_FALSE(core.watchdog_tick(100.0));
  EXPECT_FALSE(core.watchdog_stalled(100.0));
  EXPECT_FALSE(core.is_admitted(starved.id));
  EXPECT_EQ(core.stats().demand_clamps, 0u);
  EXPECT_EQ(core.stats().rejections, 0u);
  EXPECT_EQ(core.monitor().waitlist().size(), 1u);
}

TEST(Reclaim, ReapAdmittedOrphanReturnsLoadAndWakesWaiter) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore core(config);
  obs::EventRecorder recorder;
  core.set_trace_sink(&recorder);
  std::vector<sim::ThreadId> woken;
  core.set_waker([&](sim::ThreadId tid) { woken.push_back(tid); });

  const AdmitTicket orphan = core.admit(request(1, mb(6)), 0.0);
  ASSERT_TRUE(orphan.admitted);
  const AdmitTicket waiter = core.admit(request(2, mb(14)), 0.1);
  ASSERT_FALSE(waiter.admitted);

  const ProgressMonitor::ReapOutcome outcome = core.reap(1, 0.5);
  EXPECT_TRUE(outcome.reaped);
  EXPECT_TRUE(outcome.was_admitted);
  EXPECT_EQ(outcome.period, orphan.id);
  EXPECT_EQ(core.stats().reclaims, 1u);
  EXPECT_EQ(recorder.count(obs::EventKind::kReclaim), 1u);

  // The freed capacity admitted the parked waiter in the same reap.
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 2u);
  EXPECT_TRUE(core.is_admitted(waiter.id));
  EXPECT_EQ(core.resources().usage(ResourceKind::kLLC), mb(14));
  EXPECT_FALSE(core.active_for_thread(1).has_value());

  core.release(waiter.id, {}, 1.0);
  EXPECT_TRUE(core.resources().effectively_free(ResourceKind::kLLC));
}

TEST(Reclaim, ReapWaitlistedOrphanEvictsEntry) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore core(config);
  std::vector<sim::ThreadId> woken;
  core.set_waker([&](sim::ThreadId tid) { woken.push_back(tid); });

  const AdmitTicket holder = core.admit(request(1, mb(12)), 0.0);
  const AdmitTicket parked = core.admit(request(2, mb(12)), 0.1);
  ASSERT_FALSE(parked.admitted);

  const ProgressMonitor::ReapOutcome outcome =
      core.reap(2, 0.5, /*remember_waiter=*/true);
  EXPECT_TRUE(outcome.reaped);
  EXPECT_FALSE(outcome.was_admitted);
  EXPECT_EQ(core.stats().reclaims, 1u);
  EXPECT_TRUE(core.monitor().waitlist().empty());
  EXPECT_TRUE(woken.empty());
  // A live waiter polling on the period observes the eviction exactly once.
  EXPECT_TRUE(core.is_reclaimed(parked.id));
  EXPECT_TRUE(core.take_reclaimed(parked.id));
  EXPECT_FALSE(core.take_reclaimed(parked.id));
  // The holder's load was untouched.
  EXPECT_EQ(core.resources().usage(ResourceKind::kLLC), mb(12));
  core.release(holder.id, {}, 1.0);
}

TEST(Reclaim, ReapWithoutActivePeriodIsNoop) {
  AdmissionCore core;
  const ProgressMonitor::ReapOutcome outcome = core.reap(42, 0.0);
  EXPECT_FALSE(outcome.reaped);
  EXPECT_EQ(core.stats().reclaims, 0u);
}

TEST(Reclaim, SweepReapsOnlyLeaseExpiredPeriods) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore core(config);

  const AdmitTicket stale = core.admit(request(1, mb(6)), 0.0);
  core.advance_epoch();
  core.advance_epoch();
  core.advance_epoch();
  const AdmitTicket fresh = core.admit(request(2, mb(4)), 0.1);

  // Age 3 for the stale lease, 0 for the fresh one.
  EXPECT_EQ(core.sweep(/*max_epoch_age=*/2, 0.5), 1u);
  EXPECT_EQ(core.stats().reclaims, 1u);
  EXPECT_FALSE(core.active_for_thread(1).has_value());
  EXPECT_TRUE(core.is_admitted(fresh.id));
  EXPECT_EQ(core.resources().usage(ResourceKind::kLLC), mb(4));
  EXPECT_EQ(core.sweep(2, 0.6), 0u);  // nothing stale remains

  core.release(fresh.id, {}, 1.0);
  (void)stale;
}

TEST(Reclaim, HeartbeatRefreshesLeaseAndPreventsSweep) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore core(config);

  const AdmitTicket held = core.admit(request(1, mb(6)), 0.0);
  core.advance_epoch();
  core.advance_epoch();
  core.advance_epoch();
  core.heartbeat(1);  // live thread refreshes its lease to the current epoch
  EXPECT_EQ(core.sweep(2, 0.5), 0u);
  EXPECT_TRUE(core.is_admitted(held.id));
  core.heartbeat(99);  // unknown thread: no-op
  core.release(held.id, {}, 1.0);
}

}  // namespace
}  // namespace rda::core
