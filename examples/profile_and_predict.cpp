// The §2.4 + §4.4 toolchain end to end:
//   1. "instrument" water_nsquared with the PIN-substitute trace generator,
//   2. run the windowed profiler, detect progress periods, map them onto the
//      loop nest (ParseAPI substitute),
//   3. print the pp_begin/pp_end annotations a compiler pass would insert,
//   4. fit the logarithmic WSS model over three input scales and predict the
//      working set at an unseen fourth input (the paper's Fig. 12 protocol).
#include <cstdio>
#include <vector>

#include "predict/regression.hpp"
#include "profiler/report.hpp"
#include "util/units.hpp"
#include "workload/trace_models.hpp"

using namespace rda;

namespace {

prof::ProfileReport profile_at(std::uint64_t molecules) {
  const workload::AppTraceModel model =
      workload::make_wnsq_trace(molecules, /*windows_per_pp=*/5, /*seed=*/42);
  prof::WindowConfig wcfg;
  wcfg.window_accesses = model.window_accesses;
  wcfg.hot_threshold = model.hot_threshold;
  return prof::Profiler(wcfg, {}).profile(*model.source, model.nest);
}

}  // namespace

int main() {
  std::printf("profiling water_nsquared at its default input (8000 "
              "molecules)...\n\n");
  const prof::ProfileReport report = profile_at(8000);
  std::printf("%s\n", report.to_string().c_str());

  std::printf("scaling study (paper Fig. 12 protocol):\n");
  const std::vector<std::uint64_t> inputs = workload::wnsq_input_sizes();
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < 3; ++i) {  // train on 1x/2x/4x
    const prof::ProfileReport r = profile_at(inputs[i]);
    if (r.periods.empty()) continue;
    xs.push_back(static_cast<double>(inputs[i]));
    ys.push_back(static_cast<double>(r.periods[0].period.wss_bytes));
    std::printf("  n=%5llu -> PP1 wss %.2f MB\n",
                static_cast<unsigned long long>(inputs[i]),
                util::bytes_to_mb(r.periods[0].period.wss_bytes));
  }

  const predict::WssPredictor predictor(xs, ys);
  const double predicted = predictor.predict(static_cast<double>(inputs[3]));
  const prof::ProfileReport validation = profile_at(inputs[3]);
  const double actual =
      validation.periods.empty()
          ? 0.0
          : static_cast<double>(validation.periods[0].period.wss_bytes);

  std::printf("\n  fit: %s\n", predictor.describe().c_str());
  std::printf("  predicted wss at n=%llu: %.2f MB, measured %.2f MB -> "
              "accuracy %d%%\n",
              static_cast<unsigned long long>(inputs[3]),
              predicted / 1024.0 / 1024.0, actual / 1024.0 / 1024.0,
              static_cast<int>(
                  100.0 * predict::prediction_accuracy(predicted, actual)));
  std::printf("\n(the annotations above are exactly what a source-level "
              "compiler pass would insert per §4.4)\n");
  return 0;
}
