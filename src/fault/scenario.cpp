#include "fault/scenario.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "core/rda_scheduler.hpp"
#include "obs/reconcile.hpp"
#include "obs/recorder.hpp"
#include "runtime/gate.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace rda::fault {

std::string_view to_string(Substrate substrate) {
  switch (substrate) {
    case Substrate::kSim: return "sim";
    case Substrate::kNative: return "native";
  }
  return "?";
}

namespace {

using util::MB;

/// Records the FIRST violated invariant: later violations are usually
/// knock-on effects of the first, so the head of the chain is the one worth
/// printing in the CSV.
void require(ScenarioResult& result, bool ok, const std::string& why) {
  if (!ok && result.failure.empty()) result.failure = why;
}

/// Sim thread count per workload shape — what FaultPlan::random spreads its
/// thread-targeted faults across.
std::size_t shape_thread_count(const std::string& name) {
  if (name == "contended") return 4;
  if (name == "infeasible") return 4;
  if (name == "churn") return 3;
  if (name == "pool") return 4;
  if (name == "multires") return 4;
  return 4;
}

/// The shared watchdog configuration: round-triggered only. The time
/// trigger is deliberately off in scenarios — on the native substrate it
/// fires on wall-clock noise, which would break the byte-determinism the
/// fault matrix asserts.
core::WatchdogOptions scenario_watchdog(std::uint32_t max_wake_rounds) {
  core::WatchdogOptions watchdog;
  watchdog.enable = true;
  watchdog.max_wake_rounds = max_wake_rounds;
  watchdog.max_wait_seconds = 0.0;
  watchdog.clamp = true;
  watchdog.clamp_fraction = 0.5;
  watchdog.force_admit = true;
  watchdog.reject = true;
  return watchdog;
}

void check_monitor_ledger(ScenarioResult& result,
                          const core::MonitorStats& stats) {
  // Every period that began must have left through exactly one door.
  const std::uint64_t closed =
      stats.ends + stats.cancels + stats.reclaims + stats.rejections;
  require(result, stats.begins == closed,
          "period leak: begins=" + std::to_string(stats.begins) +
              " but ends+cancels+reclaims+rejections=" +
              std::to_string(closed));
}

/// Per-resource quiescence ledger, over EVERY configured kind (LLC, DRAM
/// bandwidth, energy budget): the stripe invariant usage + free − overdraft
/// == bound must hold per kind, and usage, overdraft, and the REVERSIBLE
/// oversubscription tally must each drain back to zero — a rung-2
/// force-admitted period that leaves through any door (pp_end, orphan
/// reclaim) takes its oversub charge and overdraft with it, on every
/// resource row it was charged on, not just the LLC. A reclaim path that
/// forgets the discharge on one row leaks apparent capacity permanently —
/// exactly the bug class this cell-level assert pins.
void check_resource_ledger(ScenarioResult& result,
                           const std::vector<obs::ResourceRow>& rows) {
  const obs::ReconcileReport report =
      obs::reconcile_resources(rows, /*expect_quiescent=*/true);
  require(result, report.ok, "resource ledger failed: " + report.message);
}

void check_shard_audit(ScenarioResult& result,
                       const core::AdmissionCore::AuditReport& audit) {
  require(result, audit.ok, "shard audit failed: " + audit.detail);
}

void check_events(ScenarioResult& result, const obs::EventRecorder& recorder,
                  const core::MonitorStats& stats) {
  require(result, recorder.dropped() == 0,
          "event ring overflowed (" + std::to_string(recorder.dropped()) +
              " dropped) - ledger cannot reconcile");
  if (recorder.dropped() != 0) return;
  const std::vector<obs::Event> events = recorder.events();
  const obs::ReconcileReport report = obs::reconcile(events, stats);
  require(result, report.ok, "event/stat reconcile failed: " + report.message);
  require(result, report.still_blocked == 0,
          "stranded waiters: " + std::to_string(report.still_blocked) +
              " periods still blocked at capture end");
  require(result, report.still_admitted == 0,
          "leaked admissions: " + std::to_string(report.still_admitted) +
              " periods still admitted at capture end");
}

void fill_monitor_counters(ScenarioResult& result,
                           const core::MonitorStats& stats) {
  result.begins = stats.begins;
  result.ends = stats.ends;
  result.reclaims = stats.reclaims;
  result.rejections = stats.rejections;
  result.demand_clamps = stats.demand_clamps;
  result.force_admissions = stats.watchdog_force_admissions;
}

// --- Sim substrate ---------------------------------------------------------

void populate_sim(const std::string& name, sim::Engine& engine,
                  core::RdaScheduler& sched) {
  auto add_threads = [&](sim::ProcessId pid, int threads, int periods,
                         std::uint64_t wss, double flops) {
    for (int t = 0; t < threads; ++t) {
      sim::ProgramBuilder builder;
      for (int p = 0; p < periods; ++p) {
        builder.period("pp", flops, wss, ReuseLevel::kHigh);
      }
      engine.add_thread(pid, builder.build());
    }
  };

  if (name == "contended") {
    // Four 8 MB threads on a 15 MB LLC: constant waitlist churn, every
    // block/wake path live.
    for (int t = 0; t < 4; ++t) {
      add_threads(engine.create_process(), 1, 3, MB(8), 3e8);
    }
  } else if (name == "infeasible") {
    // A 24 MB demand on a 15 MB LLC, arriving while 5 MB competitors keep
    // the cache occupied (the warm-up phase delays it past the free-resource
    // liveness override, and three staggered competitors keep usage nonzero):
    // only the watchdog ladder — clamp, then forced oversubscription — can
    // admit it before the competitors drain.
    const sim::ProcessId big = engine.create_process();
    sim::ProgramBuilder builder;
    builder.plain("warm", 1e8, MB(1), ReuseLevel::kLow);
    builder.period("big", 2e8, MB(24), ReuseLevel::kHigh);
    builder.period("big", 2e8, MB(24), ReuseLevel::kHigh);
    engine.add_thread(big, builder.build());
    for (int t = 0; t < 3; ++t) {
      // Deliberately staggered period lengths: if the competitors ran in
      // lockstep the LLC would momentarily empty between their periods and
      // the free-resource liveness override would admit the big demand
      // before the watchdog's round trigger matures.
      add_threads(engine.create_process(), 1, 4, MB(5),
                  1.5e8 * static_cast<double>(t + 2));
    }
  } else if (name == "churn") {
    // Many short periods: exercises the release/rescan path density.
    for (int t = 0; t < 3; ++t) {
      add_threads(engine.create_process(), 1, 6, MB(4), 1e8);
    }
  } else if (name == "pool") {
    // §3.4 task pool whose aggregate demand over-commits (3 x 6 MB) plus an
    // independent competitor: the group pause/group admit path.
    const sim::ProcessId pool = engine.create_process();
    sched.mark_pool(pool);
    add_threads(pool, 3, 2, MB(6), 2e8);
    add_threads(engine.create_process(), 1, 2, MB(7), 2e8);
  } else if (name == "multires") {
    // Vector demands on all three resource rows: two 8 MB LLC-heavy threads
    // contend for cache while two streaming threads declare DRAM bandwidth
    // and watts that overcommit their budgets (2 x 18 GB/s on a 30 GB/s
    // row, 2 x 14 W on a 20 W cap). Waitlist churn — and any injected
    // corrupted counter — therefore lands on the bandwidth and energy rows
    // too, and the per-kind ledger must still drain all of them.
    for (int t = 0; t < 2; ++t) {
      add_threads(engine.create_process(), 1, 3, MB(8), 3e8);
    }
    for (int t = 0; t < 2; ++t) {
      sim::ProgramBuilder builder;
      for (int p = 0; p < 3; ++p) {
        builder.period_bw("stream", 2e8, MB(2), ReuseLevel::kLow, 18e9);
        builder.watts(14.0);
      }
      engine.add_thread(engine.create_process(), builder.build());
    }
  } else {
    throw std::runtime_error("unknown scenario shape: " + name);
  }
}

void run_sim(const ScenarioSpec& spec, FaultInjector& injector,
             ScenarioResult& result) {
  obs::EventRecorder recorder(1 << 16);

  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  cfg.fault_injector = &injector;
  sim::Engine engine(cfg);

  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;
  options.trace_sink = &recorder;
  options.fault_injector = &injector;
  options.monitor.watchdog = scenario_watchdog(3);
  if (spec.name == "multires") {
    // All three resource rows configured, and counter feedback on so a
    // kCorruptCounter fault actually perturbs state the ledger must absorb.
    options.bandwidth_capacity = cfg.machine.dram_bandwidth;
    options.energy_capacity_watts = 20.0;
    options.feedback.enable = true;
  }
  core::RdaScheduler sched(static_cast<double>(cfg.machine.llc_bytes),
                           cfg.calib, options);
  engine.set_gate(&sched);

  populate_sim(spec.name, engine, sched);
  const sim::SimResult sim_result = engine.run();

  const core::MonitorStats& stats = sched.monitor_stats();
  fill_monitor_counters(result, stats);
  result.lost_wakes = sim_result.lost_wakes;
  result.recovered_wakes = sim_result.recovered_wakes;

  const core::AdmissionCore& core = sched.core();
  require(result, core.resources().effectively_free(ResourceKind::kLLC),
          "LLC load not conserved: " +
              std::to_string(core.resources().usage(ResourceKind::kLLC)) +
              " bytes still charged after all threads finished");
  check_resource_ledger(result, core.resource_rows());
  check_shard_audit(result, core.audit());
  require(result, core.monitor().registry().active_count() == 0,
          "registry not drained: " +
              std::to_string(core.monitor().registry().active_count()) +
              " periods still active");
  require(result, core.monitor().waitlist().empty(),
          "waitlist not drained: " +
              std::to_string(core.monitor().waitlist().size()) +
              " entries still parked");
  check_monitor_ledger(result, stats);
  check_events(result, recorder, stats);
}

// --- Native substrate ------------------------------------------------------

/// Spin until `pred` holds. The deadline is a failure backstop only — on the
/// success path nothing here depends on wall time, so determinism is kept.
void await(const std::function<bool()>& pred, const char* what) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) {
      throw std::runtime_error(std::string("scenario stalled waiting for ") +
                               what);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

core::ReleaseObservation observed(double peak) {
  core::ReleaseObservation obs;
  obs.peak_occupancy = peak;
  obs.cache_contended = false;
  obs.has_counters = true;
  return obs;
}

/// Runs `body` on a worker thread, capturing any exception text so the
/// scenario reports it as a ledger failure instead of terminating.
struct Worker {
  std::thread thread;
  std::string error;

  explicit Worker(std::function<void()> body) {
    thread = std::thread([this, body = std::move(body)] {
      try {
        body();
      } catch (const std::exception& e) {
        error = e.what();
      }
    });
  }
  void join(ScenarioResult& result, const char* who) {
    thread.join();
    require(result, error.empty(),
            std::string(who) + " thread failed: " + error);
  }
};

/// Native scenarios sequence every gate interaction structurally (waiting()
/// polls, joins between rounds) so the injector's consult order — the only
/// fault clock — is identical on every run regardless of OS scheduling.
void run_native(const ScenarioSpec& spec, FaultInjector& injector,
                ScenarioResult& result) {
  obs::EventRecorder recorder(1 << 16);

  rt::GateConfig cfg;
  cfg.llc_capacity_bytes = 1000.0;
  cfg.policy = core::PolicyKind::kStrict;
  cfg.trace_sink = &recorder;
  cfg.fault_injector = &injector;
  cfg.monitor.watchdog =
      scenario_watchdog(spec.name == "infeasible" ? 1 : 3);
  rt::AdmissionGate gate(cfg);

  if (spec.name == "contended") {
    // Three hold/block/handoff rounds: the waiter can only be admitted by
    // the main thread's release, so every wake consult is a real grant.
    for (int round = 0; round < 3; ++round) {
      const core::PeriodId held =
          gate.begin(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh, "hold");
      Worker waiter([&gate] {
        const core::PeriodId id =
            gate.begin(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh, "wait");
        gate.end(id, observed(600.0));
      });
      await([&gate] { return gate.waiting() == 1; }, "waiter to park");
      gate.end(held, observed(600.0));
      waiter.join(result, "waiter");
    }
  } else if (spec.name == "infeasible") {
    // A demand larger than the whole gate (1500 on 1000) parked behind held
    // load: only the watchdog clamp rung (0.5 x capacity = 500) can admit
    // it. Main-thread pulses drive the wake rounds that escalate it.
    std::atomic<bool> release_holder{false};
    Worker holder([&gate, &release_holder] {
      const core::PeriodId id =
          gate.begin(ResourceKind::kLLC, 400.0, ReuseLevel::kHigh, "hold");
      while (!release_holder.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      gate.end(id, observed(400.0));
    });
    await([&gate] { return gate.usage(ResourceKind::kLLC) >= 400.0; },
          "holder admission");
    Worker waiter([&gate] {
      const core::PeriodId id =
          gate.begin(ResourceKind::kLLC, 1500.0, ReuseLevel::kHigh, "big");
      gate.end(id, observed(500.0));
    });
    await([&gate] { return gate.waiting() == 1; }, "big demand to park");
    for (int pulse = 0; pulse < 5 && gate.waiting() != 0; ++pulse) {
      const core::PeriodId id =
          gate.begin(ResourceKind::kLLC, 50.0, ReuseLevel::kLow, "pulse");
      gate.end(id, observed(50.0));
    }
    await([&gate] { return gate.waiting() == 0; }, "clamp escalation");
    waiter.join(result, "waiter");
    release_holder.store(true);
    holder.join(result, "holder");
  } else if (spec.name == "churn") {
    // Uncontended begin/end density: every end consults the counter hook.
    for (int i = 0; i < 6; ++i) {
      const core::PeriodId id =
          gate.begin(ResourceKind::kLLC, 300.0, ReuseLevel::kLow, "churn");
      gate.end(id, observed(300.0));
    }
  } else if (spec.name == "pool") {
    // §3.4 group pause: the second pool member's denial pauses the group;
    // the first member's end group-admits it.
    constexpr std::uint32_t kGroup = 7;
    gate.mark_pool(kGroup);
    std::atomic<bool> release_first{false};
    Worker first([&gate, &release_first] {
      gate.join_group(kGroup);
      const core::PeriodId id =
          gate.begin(ResourceKind::kLLC, 700.0, ReuseLevel::kHigh, "pool.a");
      while (!release_first.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      gate.end(id, observed(700.0));
    });
    await([&gate] { return gate.usage(ResourceKind::kLLC) >= 700.0; },
          "first pool member admission");
    Worker second([&gate] {
      gate.join_group(kGroup);
      const core::PeriodId id =
          gate.begin(ResourceKind::kLLC, 700.0, ReuseLevel::kHigh, "pool.b");
      gate.end(id, observed(700.0));
    });
    await([&gate] { return gate.waiting() == 1; }, "second member to park");
    release_first.store(true);
    first.join(result, "first pool member");
    second.join(result, "second pool member");
  } else {
    throw std::runtime_error("unknown scenario shape: " + spec.name);
  }

  const rt::GateStats stats = gate.stats();
  fill_monitor_counters(result, stats.monitor);
  result.lost_wakes = stats.lost_wakes;
  result.recovered_wakes = stats.recovered_wakes;

  require(result, gate.usage(ResourceKind::kLLC) < 1e-6,
          "LLC load not conserved: " +
              std::to_string(gate.usage(ResourceKind::kLLC)) +
              " still charged after all threads joined");
  require(result, gate.waiting() == 0,
          "waitlist not drained: " + std::to_string(gate.waiting()) +
              " entries still parked");
  check_resource_ledger(result, gate.resource_rows());
  check_shard_audit(result, gate.audit());
  check_monitor_ledger(result, stats.monitor);
  check_events(result, recorder, stats.monitor);
}

/// Native threads are identified by process-lifetime gate tokens whose
/// values depend on how many scenario cells ran before this one, so a plan
/// that targets specific thread ids would fire differently run to run.
/// Broadening every spec to match-any keeps firing keyed to the (structural,
/// deterministic) consult order alone.
FaultPlan untargeted(const FaultPlan& plan) {
  FaultPlan out;
  for (FaultSpec spec : plan.specs()) {
    spec.thread = sim::kInvalidThread;
    out.add(spec);
  }
  return out;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ScenarioResult result;
  result.name = spec.name;
  result.substrate = std::string(to_string(spec.substrate));
  result.seed = spec.seed;
  try {
    FaultPlan plan = spec.plan.empty()
                         ? FaultPlan::random(spec.seed, spec.fault_count,
                                             shape_thread_count(spec.name))
                         : spec.plan;
    if (spec.substrate == Substrate::kNative) plan = untargeted(plan);
    FaultInjector injector(std::move(plan));

    if (spec.substrate == Substrate::kSim) {
      run_sim(spec, injector, result);
    } else {
      run_native(spec, injector, result);
    }

    const std::vector<FaultSpec> fired = injector.fired();
    result.faults_fired = fired.size();
    for (const FaultSpec& f : fired) {
      if (!result.fired_kinds.empty()) result.fired_kinds += '+';
      result.fired_kinds += to_string(f.kind);
    }
    result.ok = result.failure.empty();
  } catch (const std::exception& e) {
    result.ok = false;
    if (result.failure.empty()) result.failure = e.what();
  }
  return result;
}

std::vector<ScenarioSpec> scenario_grid(std::uint64_t base_seed,
                                        std::size_t seeds) {
  static const char* kShapes[] = {"contended", "infeasible", "churn", "pool"};
  std::vector<ScenarioSpec> grid;
  grid.reserve((4 * 2 + 1) * seeds);
  for (const char* shape : kShapes) {
    for (const Substrate substrate : {Substrate::kSim, Substrate::kNative}) {
      for (std::size_t i = 0; i < seeds; ++i) {
        ScenarioSpec spec;
        spec.name = shape;
        spec.substrate = substrate;
        spec.seed = base_seed + i;
        // Seed index 0 is the fault-free control cell of each shape: the
        // ledger must hold with and without injected faults.
        spec.fault_count = i;
        grid.push_back(std::move(spec));
      }
    }
  }
  // The multi-resource shape runs on the sim substrate only (the native
  // scenarios drive the gate with scripted single-resource rounds): its
  // cells prove the per-kind ledger — bandwidth and energy rows included —
  // under the same random fault draws as the single-resource shapes.
  for (std::size_t i = 0; i < seeds; ++i) {
    ScenarioSpec spec;
    spec.name = "multires";
    spec.substrate = Substrate::kSim;
    spec.seed = base_seed + i;
    spec.fault_count = i;
    grid.push_back(std::move(spec));
  }
  // Scripted cells: the recovery paths a random draw might miss are pinned
  // so every matrix run proves them — death while admitted, death while
  // waitlisted, a lost grant on each substrate, and a delayed grant on the
  // native gate (which has real time for the delay to happen in).
  auto scripted = [&](const char* name, Substrate substrate, FaultKind kind,
                      Hook hook, std::uint64_t at_count) {
    ScenarioSpec spec;
    spec.name = name;
    spec.substrate = substrate;
    spec.seed = base_seed;
    FaultSpec f;
    f.kind = kind;
    f.hook = hook;
    f.at_count = at_count;
    spec.plan.add(f);
    grid.push_back(std::move(spec));
  };
  // at_count 1: in the contended shape only the very first admission is an
  // immediate admit (every later grant goes through the waitlist), so the
  // death must strike that one to hit the admitted-orphan path.
  scripted("contended", Substrate::kSim, FaultKind::kThreadDeath, Hook::kAdmit,
           1);
  scripted("contended", Substrate::kSim, FaultKind::kThreadDeath, Hook::kBlock,
           1);
  scripted("contended", Substrate::kSim, FaultKind::kLostWake, Hook::kWake, 1);
  scripted("contended", Substrate::kNative, FaultKind::kLostWake, Hook::kWake,
           1);
  scripted("contended", Substrate::kNative, FaultKind::kDelayedWake,
           Hook::kWake, 2);
  // Corrupted counters against the multi-resource rows: the release-path
  // corruption feeds the demand corrector while bandwidth and energy rows
  // carry load, so the per-kind ledger (oversubscription AND overdraft back
  // to zero on all three kinds) is proven under counter faults, not just
  // wake faults. Counts 1 and 4 strike an early and a late release.
  scripted("multires", Substrate::kSim, FaultKind::kCorruptCounter,
           Hook::kRelease, 1);
  scripted("multires", Substrate::kSim, FaultKind::kCorruptCounter,
           Hook::kRelease, 4);
  scripted("multires", Substrate::kSim, FaultKind::kThreadDeath, Hook::kBlock,
           2);
  return grid;
}

std::string csv_header() {
  return "name,substrate,seed,ok,failure,faults_fired,begins,ends,reclaims,"
         "rejections,demand_clamps,force_admissions,lost_wakes,"
         "recovered_wakes,fired_kinds\n";
}

namespace {

/// CSV fields must not smuggle separators: failure texts carry commas and
/// newlines (exception messages), which would shift every later column.
std::string sanitize(std::string text) {
  for (char& c : text) {
    if (c == ',') c = ';';
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

}  // namespace

std::string csv_row(const ScenarioResult& r) {
  std::string row;
  row += r.name;
  row += ',';
  row += r.substrate;
  row += ',';
  row += std::to_string(r.seed);
  row += ',';
  row += r.ok ? '1' : '0';
  row += ',';
  row += sanitize(r.failure);
  row += ',';
  row += std::to_string(r.faults_fired);
  row += ',';
  row += std::to_string(r.begins);
  row += ',';
  row += std::to_string(r.ends);
  row += ',';
  row += std::to_string(r.reclaims);
  row += ',';
  row += std::to_string(r.rejections);
  row += ',';
  row += std::to_string(r.demand_clamps);
  row += ',';
  row += std::to_string(r.force_admissions);
  row += ',';
  row += std::to_string(r.lost_wakes);
  row += ',';
  row += std::to_string(r.recovered_wakes);
  row += ',';
  row += r.fired_kinds;
  row += '\n';
  return row;
}

}  // namespace rda::fault
