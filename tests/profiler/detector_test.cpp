#include "profiler/detector.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::prof {
namespace {

using rda::util::MB;

WindowStats window(std::uint64_t wss_mbx100, double reuse,
                   std::uint64_t jump_pc = 0) {
  WindowStats w;
  w.wss_bytes = MB(static_cast<double>(wss_mbx100) / 100.0);
  w.footprint_bytes = w.wss_bytes * 3 / 2;
  w.reuse_ratio = reuse;
  w.accesses = 1000;
  if (jump_pc != 0) w.jump_counts[jump_pc] = 10;
  return w;
}

std::vector<WindowStats> repeat_window(std::uint64_t wss_mbx100, double reuse,
                                       std::size_t count,
                                       std::uint64_t jump_pc = 0) {
  std::vector<WindowStats> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(window(wss_mbx100, reuse, jump_pc));
  }
  return out;
}

TEST(PeriodDetector, UniformRunDetectedAsOnePeriod) {
  const auto windows = repeat_window(200, 8.0, 10, 0x42);
  PeriodDetector detector;
  const auto periods = detector.detect(windows);
  ASSERT_EQ(periods.size(), 1u);
  EXPECT_EQ(periods[0].first_window, 0u);
  EXPECT_EQ(periods[0].last_window, 9u);
  EXPECT_NEAR(static_cast<double>(periods[0].wss_bytes),
              static_cast<double>(MB(2.0)), 1e3);
  EXPECT_EQ(periods[0].dominant_jump_pc, 0x42u);
}

TEST(PeriodDetector, TwoDistinctBehavioursSplit) {
  auto windows = repeat_window(200, 9.0, 6, 0x10);
  const auto second = repeat_window(500, 2.5, 6, 0x20);
  windows.insert(windows.end(), second.begin(), second.end());
  PeriodDetector detector;
  const auto periods = detector.detect(windows);
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[0].last_window, 5u);
  EXPECT_EQ(periods[1].first_window, 6u);
  EXPECT_EQ(periods[0].dominant_jump_pc, 0x10u);
  EXPECT_EQ(periods[1].dominant_jump_pc, 0x20u);
}

TEST(PeriodDetector, NoisyButSimilarWindowsStayTogether) {
  // +-10% jitter, inside the 25% default threshold.
  std::vector<WindowStats> windows;
  const std::uint64_t base[6] = {200, 215, 195, 208, 190, 205};
  for (std::uint64_t b : base) windows.push_back(window(b, 8.0));
  PeriodDetector detector;
  const auto periods = detector.detect(windows);
  ASSERT_EQ(periods.size(), 1u);
  EXPECT_EQ(periods[0].window_count(), 6u);
}

TEST(PeriodDetector, ReuseChangeAloneSplitsPeriods) {
  // Same working set, very different reuse: distinct resource behaviour.
  auto windows = repeat_window(200, 12.0, 5);
  const auto tail = repeat_window(200, 2.0, 5);
  windows.insert(windows.end(), tail.begin(), tail.end());
  const auto periods = PeriodDetector().detect(windows);
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[0].reuse_level, ReuseLevel::kHigh);
  EXPECT_EQ(periods[1].reuse_level, ReuseLevel::kMedium);
}

TEST(PeriodDetector, ShortBlipsDoNotSeedPeriods) {
  // Alternating windows never provide min_windows consecutive similars.
  std::vector<WindowStats> windows;
  for (int i = 0; i < 10; ++i) {
    windows.push_back(window(i % 2 == 0 ? 100 : 600, i % 2 == 0 ? 2.0 : 10.0));
  }
  const auto periods = PeriodDetector().detect(windows);
  EXPECT_TRUE(periods.empty());
}

TEST(PeriodDetector, MinWssFloorSkipsStartupNoise) {
  DetectorConfig cfg;
  cfg.min_wss_bytes = MB(1);
  auto windows = repeat_window(10, 1.0, 4);  // 0.1 MB startup chatter
  const auto main_phase = repeat_window(300, 9.0, 6);
  windows.insert(windows.end(), main_phase.begin(), main_phase.end());
  const auto periods = PeriodDetector(cfg).detect(windows);
  ASSERT_EQ(periods.size(), 1u);
  EXPECT_EQ(periods[0].first_window, 4u);
}

TEST(PeriodDetector, FewerThanMinWindowsYieldsNothing) {
  const auto windows = repeat_window(200, 8.0, 2);
  EXPECT_TRUE(PeriodDetector().detect(windows).empty());
}

TEST(PeriodDetector, ReportsAveragedMetrics) {
  std::vector<WindowStats> windows;
  windows.push_back(window(100, 4.0));
  windows.push_back(window(110, 5.0));
  windows.push_back(window(120, 6.0));
  const auto periods = PeriodDetector().detect(windows);
  ASSERT_EQ(periods.size(), 1u);
  EXPECT_NEAR(periods[0].reuse_ratio, 5.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(periods[0].wss_bytes),
              static_cast<double>(MB(1.1)), 1e4);
}

TEST(PeriodDetector, ScanResumesAfterAcceptedPeriod) {
  // PP1 (5 windows), noise (1), PP2 (5 windows).
  auto windows = repeat_window(200, 8.0, 5);
  windows.push_back(window(50, 1.0));
  const auto second = repeat_window(210, 8.2, 5);
  windows.insert(windows.end(), second.begin(), second.end());
  const auto periods = PeriodDetector().detect(windows);
  // The noise window separates the similar-looking runs: the detector must
  // not bridge across it (it differs by >25% from the running mean).
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[0].last_window, 4u);
  EXPECT_EQ(periods[1].first_window, 6u);
}

TEST(PeriodDetector, SimilarPredicateRelativeBand) {
  PeriodDetector detector;
  WindowStats w = window(200, 8.0);
  EXPECT_TRUE(detector.similar(w, static_cast<double>(MB(2.0)), 8.0));
  EXPECT_TRUE(detector.similar(w, static_cast<double>(MB(2.4)), 8.0));
  EXPECT_FALSE(detector.similar(w, static_cast<double>(MB(3.0)), 8.0));
  EXPECT_FALSE(detector.similar(w, static_cast<double>(MB(2.0)), 16.0));
}

TEST(PeriodDetector, ConfigValidation) {
  DetectorConfig bad;
  bad.min_windows = 1;
  EXPECT_THROW(PeriodDetector{bad}, util::CheckFailure);
}

}  // namespace
}  // namespace rda::prof
