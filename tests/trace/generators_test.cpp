#include "trace/generators.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "util/units.hpp"

namespace rda::trace {
namespace {

using rda::util::KB;

std::vector<TraceRecord> memory_only(const std::vector<TraceRecord>& records) {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records) {
    if (r.is_memory()) out.push_back(r);
  }
  return out;
}

TEST(RegionAccessSource, SequentialCoversRegionInOrder) {
  RegionSpec spec;
  spec.base = 0x1000;
  spec.size_bytes = 64;  // 8 words
  spec.pattern = Pattern::kSequential;
  spec.store_ratio = 0.0;
  RegionAccessSource src(spec, 16, /*seed=*/1);
  const auto records = drain(src);
  ASSERT_EQ(records.size(), 16u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].value, 0x1000 + (i % 8) * 8) << i;
    EXPECT_EQ(records[i].kind, RecordKind::kLoad);
  }
}

TEST(RegionAccessSource, StoreRatioRespected) {
  RegionSpec spec;
  spec.base = 0;
  spec.size_bytes = KB(64);
  spec.pattern = Pattern::kRandomUniform;
  spec.store_ratio = 0.5;
  RegionAccessSource src(spec, 20000, 2);
  std::size_t stores = 0, total = 0;
  TraceRecord rec;
  while (src.next(rec)) {
    ++total;
    stores += rec.kind == RecordKind::kStore;
  }
  EXPECT_EQ(total, 20000u);
  EXPECT_NEAR(static_cast<double>(stores) / total, 0.5, 0.02);
}

TEST(RegionAccessSource, RandomStaysInRegion) {
  RegionSpec spec;
  spec.base = 0x4000;
  spec.size_bytes = KB(4);
  spec.pattern = Pattern::kRandomUniform;
  RegionAccessSource src(spec, 5000, 3);
  TraceRecord rec;
  while (src.next(rec)) {
    if (!rec.is_memory()) continue;
    EXPECT_GE(rec.value, 0x4000u);
    EXPECT_LT(rec.value, 0x4000u + KB(4));
  }
}

TEST(RegionAccessSource, HotColdConcentratesAccesses) {
  RegionSpec spec;
  spec.base = 0;
  spec.size_bytes = KB(64);
  spec.pattern = Pattern::kHotCold;
  spec.hot_fraction = 0.125;
  spec.hot_probability = 0.9;
  RegionAccessSource src(spec, 50000, 4);
  const std::uint64_t hot_end = static_cast<std::uint64_t>(KB(64) * 0.125);
  std::size_t hot = 0, total = 0;
  TraceRecord rec;
  while (src.next(rec)) {
    ++total;
    hot += rec.value < hot_end;
  }
  // ~90% go directly to the hot set plus ~12.5% of the uniform remainder.
  EXPECT_NEAR(static_cast<double>(hot) / total, 0.9 + 0.1 * 0.125, 0.02);
}

TEST(RegionAccessSource, JumpRecordsInterleaved) {
  RegionSpec spec;
  spec.base = 0;
  spec.size_bytes = KB(1);
  spec.pattern = Pattern::kSequential;
  spec.jump_pc = 0xBEEF;
  spec.jump_period = 10;
  RegionAccessSource src(spec, 100, 5);
  const auto records = drain(src);
  std::size_t jumps = 0;
  for (const TraceRecord& r : records) {
    if (r.kind == RecordKind::kJump) {
      EXPECT_EQ(r.value, 0xBEEFu);
      ++jumps;
    }
  }
  EXPECT_EQ(jumps, 100u / 10u - 0u);  // one per 10 memory records
  EXPECT_EQ(memory_only(records).size(), 100u);
}

TEST(RegionAccessSource, DeterministicForSeed) {
  RegionSpec spec;
  spec.base = 0;
  spec.size_bytes = KB(16);
  spec.pattern = Pattern::kRandomUniform;
  RegionAccessSource a(spec, 1000, 42), b(spec, 1000, 42);
  const auto ra = drain(a), rb = drain(b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].value, rb[i].value);
    EXPECT_EQ(ra[i].kind, rb[i].kind);
  }
}

TEST(PairInteraction, EmitsLoadLoadStoreTriples) {
  PairInteractionSource src(/*base=*/0x100, /*num_records=*/4,
                            /*record_bytes=*/32, /*max_pairs=*/6);
  const auto records = drain(src);
  ASSERT_EQ(records.size(), 18u);  // 6 pairs x 3 records
  // First pair: (0,1) -> load m0, load m1, store m0.
  EXPECT_EQ(records[0].value, 0x100u);
  EXPECT_EQ(records[0].kind, RecordKind::kLoad);
  EXPECT_EQ(records[1].value, 0x100u + 32u);
  EXPECT_EQ(records[1].kind, RecordKind::kLoad);
  EXPECT_EQ(records[2].value, 0x100u);
  EXPECT_EQ(records[2].kind, RecordKind::kStore);
}

TEST(PairInteraction, TouchesAllRecords) {
  const std::uint64_t n = 10;
  PairInteractionSource src(0, n, 8, /*max_pairs=*/n * (n - 1) / 2);
  std::set<std::uint64_t> addresses;
  TraceRecord rec;
  while (src.next(rec)) addresses.insert(rec.value);
  EXPECT_EQ(addresses.size(), n);
}

TEST(PairInteraction, JumpAfterEachPairWhenRequested) {
  PairInteractionSource src(0, 4, 8, 5, /*jump_pc=*/0xAB);
  const auto records = drain(src);
  ASSERT_EQ(records.size(), 20u);  // 5 pairs x (3 mem + 1 jump)
  for (std::size_t i = 3; i < records.size(); i += 4) {
    EXPECT_EQ(records[i].kind, RecordKind::kJump);
    EXPECT_EQ(records[i].value, 0xABu);
  }
}

TEST(GridSweep, StencilTouchesNeighboursAndCentre) {
  const std::uint64_t n = 4, cell = 8;
  GridSweepSource src(0, n, cell, /*sweeps=*/1);
  const auto records = drain(src);
  // Interior cells of a 4x4 grid: 2x2 = 4 cells x 5 records... the sweep
  // terminates after the last interior cell of the final sweep.
  ASSERT_GE(records.size(), 5u);
  // First cell (1,1): loads (0,1),(2,1),(1,0),(1,2), stores (1,1).
  auto addr = [&](std::uint64_t r, std::uint64_t c) {
    return (r * n + c) * cell;
  };
  EXPECT_EQ(records[0].value, addr(0, 1));
  EXPECT_EQ(records[1].value, addr(2, 1));
  EXPECT_EQ(records[2].value, addr(1, 0));
  EXPECT_EQ(records[3].value, addr(1, 2));
  EXPECT_EQ(records[4].value, addr(1, 1));
  EXPECT_EQ(records[4].kind, RecordKind::kStore);
}

TEST(GridSweep, NeverTouchesOutsideGrid) {
  const std::uint64_t n = 8, cell = 16;
  GridSweepSource src(0x1000, n, cell, 2);
  TraceRecord rec;
  while (src.next(rec)) {
    EXPECT_GE(rec.value, 0x1000u);
    EXPECT_LT(rec.value, 0x1000u + n * n * cell);
  }
}

TEST(Combinators, ConcatPlaysInOrder) {
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.push_back(std::make_unique<VectorSource>(
      std::vector<TraceRecord>{{1, RecordKind::kLoad}}));
  parts.push_back(std::make_unique<VectorSource>(
      std::vector<TraceRecord>{{2, RecordKind::kStore}, {3, RecordKind::kLoad}}));
  ConcatSource concat(std::move(parts));
  const auto records = drain(concat);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].value, 1u);
  EXPECT_EQ(records[1].value, 2u);
  EXPECT_EQ(records[2].value, 3u);
}

TEST(Combinators, RepeatInvokesFactoryEachRound) {
  int builds = 0;
  RepeatSource repeat(
      [&]() -> std::unique_ptr<TraceSource> {
        ++builds;
        return std::make_unique<VectorSource>(
            std::vector<TraceRecord>{{7, RecordKind::kLoad}});
      },
      3);
  EXPECT_EQ(count_records(repeat), 3u);
  EXPECT_EQ(builds, 3);
}

TEST(Combinators, EmptyConcatAndRepeat) {
  ConcatSource empty_concat({});
  TraceRecord rec;
  EXPECT_FALSE(empty_concat.next(rec));
  RepeatSource empty_repeat(
      [] {
        return std::make_unique<VectorSource>(std::vector<TraceRecord>{});
      },
      5);
  EXPECT_FALSE(empty_repeat.next(rec));
}

}  // namespace
}  // namespace rda::trace
