#include "obs/reconcile.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace rda::obs {

namespace {

/// Lifecycle position of one period during replay.
enum class State : std::uint8_t {
  kPending,   ///< begun, admission not yet decided
  kBlocked,   ///< parked on the waitlist
  kAdmitted,  ///< holding load
  kClosed,    ///< ended or cancelled
};

}  // namespace

ReconcileReport reconcile(std::span<const Event> events,
                          const core::MonitorStats& stats) {
  ReconcileReport report;
  std::vector<std::string> errors;
  const auto fail = [&](const std::string& what) { errors.push_back(what); };

  std::array<std::uint64_t, kNumEventKinds> counts{};
  std::unordered_map<core::PeriodId, State> periods;

  for (const Event& e : events) {
    ++counts[static_cast<std::size_t>(e.kind)];
    if (e.kind == EventKind::kNodeDown || e.kind == EventKind::kNodeUp ||
        e.kind == EventKind::kEnqueue || e.kind == EventKind::kBatchDrain ||
        e.kind == EventKind::kSteal || e.kind == EventKind::kShed ||
        e.kind == EventKind::kMailbox || e.kind == EventKind::kPenalty ||
        e.kind == EventKind::kCreditGrant ||
        e.kind == EventKind::kCreditSpend) {
      // Node-health transitions carry a node id, not a period id; service
      // queue events happen before (or instead of) the core lifecycle;
      // tenant-ledger events (penalty rung moves, credit flow) carry a
      // tenant id. All live outside the per-period machine —
      // reconcile_service covers the queue-side ledger.
      continue;
    }
    const auto it = periods.find(e.period);
    const bool known = it != periods.end();
    std::ostringstream site;
    site << to_string(e.kind) << " of period " << e.period << " at t="
         << e.time;
    switch (e.kind) {
      case EventKind::kBegin:
        if (known) {
          fail(site.str() + ": period id seen before (ids are never reused)");
        } else {
          periods.emplace(e.period, State::kPending);
        }
        break;
      case EventKind::kAdmit:
        if (!known || it->second != State::kPending) {
          fail(site.str() + ": admit without a pending begin");
        } else {
          it->second = State::kAdmitted;
        }
        break;
      case EventKind::kBlock:
        if (!known || it->second != State::kPending) {
          fail(site.str() + ": block without a pending begin");
        } else {
          it->second = State::kBlocked;
        }
        break;
      case EventKind::kForceAdmit:
        if (known && it->second == State::kPending) {
          ++report.begin_forced;
          it->second = State::kAdmitted;
        } else if (known && it->second == State::kBlocked) {
          it->second = State::kAdmitted;  // liveness override; wake follows
        } else {
          fail(site.str() + ": force-admit while neither pending nor blocked");
        }
        break;
      case EventKind::kWake:
        if (known && it->second == State::kBlocked) {
          it->second = State::kAdmitted;
        } else if (known && it->second == State::kAdmitted) {
          // Force-admitted from the waitlist: the wake trails the admit.
        } else {
          fail(site.str() + ": wake of a period that was never blocked");
        }
        break;
      case EventKind::kPoolDisable:
        if (!known || it->second != State::kPending) {
          fail(site.str() + ": pool-disable outside a begin in progress");
        }
        break;
      case EventKind::kCancel:
        if (!known || it->second != State::kBlocked) {
          fail(site.str() + ": cancel of a period that is not waitlisted");
        } else {
          it->second = State::kClosed;
        }
        break;
      case EventKind::kEnd:
        if (!known || it->second != State::kAdmitted) {
          fail(site.str() + ": end of a period that is not admitted");
        } else {
          it->second = State::kClosed;
        }
        break;
      case EventKind::kReclaim:
        // An orphan can be reaped while holding load or while parked.
        if (!known || (it->second != State::kAdmitted &&
                       it->second != State::kBlocked)) {
          fail(site.str() +
               ": reclaim of a period that is neither admitted nor blocked");
        } else {
          it->second = State::kClosed;
        }
        break;
      case EventKind::kDemandClamp:
        // Rung 1 reshapes a waiter in place; the period stays blocked.
        if (!known || it->second != State::kBlocked) {
          fail(site.str() + ": demand-clamp of a period that is not blocked");
        }
        break;
      case EventKind::kReject:
        if (!known || it->second != State::kBlocked) {
          fail(site.str() + ": reject of a period that is not waitlisted");
        } else {
          it->second = State::kClosed;
        }
        break;
      case EventKind::kNodeDown:
      case EventKind::kNodeUp:
      case EventKind::kEnqueue:
      case EventKind::kBatchDrain:
      case EventKind::kSteal:
      case EventKind::kShed:
      case EventKind::kMailbox:
      case EventKind::kPenalty:
      case EventKind::kCreditGrant:
      case EventKind::kCreditSpend:
        break;  // handled above
    }
  }

  for (const auto& [id, state] : periods) {
    if (state == State::kBlocked) ++report.still_blocked;
    if (state == State::kAdmitted || state == State::kPending) {
      ++report.still_admitted;
    }
  }

  const auto expect = [&](EventKind kind, std::uint64_t stat,
                          const char* name) {
    const std::uint64_t seen = counts[static_cast<std::size_t>(kind)];
    if (seen != stat) {
      std::ostringstream os;
      os << "event count mismatch: " << seen << " " << to_string(kind)
         << " events vs stats." << name << " == " << stat;
      fail(os.str());
    }
  };
  expect(EventKind::kBegin, stats.begins, "begins");
  expect(EventKind::kEnd, stats.ends, "ends");
  expect(EventKind::kAdmit, stats.immediate_admissions,
         "immediate_admissions");
  expect(EventKind::kBlock, stats.blocks, "blocks");
  expect(EventKind::kWake, stats.wakes, "wakes");
  expect(EventKind::kForceAdmit, stats.forced_admissions,
         "forced_admissions");
  expect(EventKind::kPoolDisable, stats.pool_disables, "pool_disables");
  expect(EventKind::kCancel, stats.cancels, "cancels");
  expect(EventKind::kReclaim, stats.reclaims, "reclaims");
  expect(EventKind::kDemandClamp, stats.demand_clamps, "demand_clamps");
  expect(EventKind::kReject, stats.rejections, "rejections");

  // Every begin resolves exactly one way: admitted now, forced now, or
  // parked. (Waitlist exits — wake/force/cancel — are counted above.)
  const std::uint64_t resolved =
      stats.immediate_admissions + stats.blocks + report.begin_forced;
  if (stats.begins != resolved) {
    std::ostringstream os;
    os << "begins (" << stats.begins << ") != immediate admissions ("
       << stats.immediate_admissions << ") + blocks (" << stats.blocks
       << ") + begin-path force-admits (" << report.begin_forced << ")";
    fail(os.str());
  }

  if (!errors.empty()) {
    report.ok = false;
    std::ostringstream os;
    for (std::size_t i = 0; i < errors.size(); ++i) {
      if (i) os << "\n";
      os << errors[i];
    }
    report.message = os.str();
  }
  return report;
}

ReconcileReport reconcile_service(std::span<const Event> events,
                                  const ServiceStatsCheck& service) {
  ReconcileReport report;
  std::vector<std::string> errors;
  const auto fail = [&](const std::string& what) { errors.push_back(what); };

  std::uint64_t enqueues = 0;
  std::uint64_t drains = 0;
  std::uint64_t steals = 0;
  std::uint64_t stolen = 0;  // Σ batch sizes carried by kSteal
  std::uint64_t mailboxed = 0;
  std::uint64_t sheds = 0;
  std::uint64_t begins = 0;
  std::uint64_t ends = 0;
  std::uint64_t drained = 0;  // Σ batch sizes carried by kBatchDrain
  // Per-tenant attribution: service events and the core lifecycle both
  // carry the tenant id in Event::process (ordered map → sorted rows).
  std::map<std::uint64_t, TenantLedgerRow> tenants;
  const auto row = [&](const Event& e) -> TenantLedgerRow& {
    const auto id = static_cast<std::uint64_t>(e.process);
    TenantLedgerRow& r = tenants[id];
    r.tenant = id;
    return r;
  };
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kEnqueue: ++enqueues; break;
      case EventKind::kBatchDrain:
        ++drains;
        drained += static_cast<std::uint64_t>(e.demand);
        break;
      case EventKind::kSteal:
        ++steals;
        stolen += static_cast<std::uint64_t>(e.demand);
        break;
      case EventKind::kMailbox: ++mailboxed; break;
      case EventKind::kShed:
        ++sheds;
        ++row(e).sheds;
        break;
      case EventKind::kBegin:
        ++begins;
        ++row(e).begins;
        break;
      case EventKind::kEnd:
        ++ends;
        ++row(e).ends;
        break;
      default: break;
    }
  }
  report.tenants.reserve(tenants.size());
  TenantLedgerRow sum;
  for (const auto& [id, r] : tenants) {
    report.tenants.push_back(r);
    sum.begins += r.begins;
    sum.ends += r.ends;
    sum.sheds += r.sheds;
  }
  // The rows partition the stream: a begin/end/shed outside every row would
  // mean tenant identity was dropped between arrival and the core.
  if (sum.begins != begins || sum.ends != ends || sum.sheds != sheds) {
    std::ostringstream os;
    os << "per-tenant rows do not sum to totals: begins " << sum.begins
       << "/" << begins << ", ends " << sum.ends << "/" << ends
       << ", sheds " << sum.sheds << "/" << sheds;
    fail(os.str());
  }

  const auto expect = [&](std::uint64_t seen, std::uint64_t stat,
                          const char* what, const char* name) {
    if (seen != stat) {
      std::ostringstream os;
      os << "event count mismatch: " << seen << " " << what
         << " events vs service." << name << " == " << stat;
      fail(os.str());
    }
  };
  expect(enqueues, service.enqueued, "enqueue", "enqueued");
  expect(drains, service.drains, "batch_drain", "drains");
  expect(steals, service.steals, "steal", "steals");
  expect(stolen, service.stolen, "steal-size", "stolen");
  expect(mailboxed, service.mailboxed, "mailbox", "mailboxed");
  expect(sheds, service.shed, "shed", "shed");

  // Every displaced submission — stolen by an idle node or rerouted off a
  // dead one — took exactly one mailbox hop to reach its drain shard.
  if (mailboxed != stolen + service.reroutes) {
    std::ostringstream os;
    os << "mailbox ledger broken: " << mailboxed << " mailbox hops != "
       << stolen << " stolen + " << service.reroutes << " rerouted";
    fail(os.str());
  }

  // The queue loses nothing: every accepted submission is drained in some
  // batch or still sitting in the queue at capture end.
  if (drained + service.still_queued != enqueues) {
    std::ostringstream os;
    os << "queue ledger broken: " << enqueues << " enqueues != " << drained
       << " drained (sum of batch sizes) + " << service.still_queued
       << " still queued";
    fail(os.str());
  }
  // Every drained submission resolves exactly one way: one begin in the
  // core, or shed by the overload ladder. A lost submission shows up as a
  // drain/begin gap here; a double-admit as excess begins.
  if (drained != begins + sheds) {
    std::ostringstream os;
    os << "drain ledger broken: " << drained
       << " drained submissions != " << begins << " begins + " << sheds
       << " sheds";
    fail(os.str());
  }

  if (!errors.empty()) {
    report.ok = false;
    std::ostringstream os;
    for (std::size_t i = 0; i < errors.size(); ++i) {
      if (i) os << "\n";
      os << errors[i];
    }
    report.message = os.str();
  }
  return report;
}

ReconcileReport reconcile_waits(std::span<const Event> events,
                                const WaitHistogram& histogram,
                                const WaitStatsCheck& gate) {
  ReconcileReport report;
  std::vector<std::string> errors;
  const auto fail = [&](const std::string& what) { errors.push_back(what); };

  // Replay the same block→exit matching the recorder performs online.
  std::unordered_map<core::PeriodId, double> block_time;
  std::uint64_t blocks = 0;
  std::uint64_t resolved = 0;
  std::uint64_t cancelled = 0;
  double event_wait_total = 0.0;
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kBlock:
        ++blocks;
        block_time[e.period] = e.time;
        break;
      case EventKind::kWake:
      case EventKind::kForceAdmit:
      case EventKind::kCancel:
      case EventKind::kReject:
      case EventKind::kReclaim: {
        const auto it = block_time.find(e.period);
        if (it != block_time.end()) {
          ++resolved;
          if (e.kind == EventKind::kCancel) ++cancelled;
          event_wait_total += e.time - it->second;
          block_time.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  report.still_blocked = block_time.size();

  if (histogram.count() != resolved) {
    std::ostringstream os;
    os << "wait histogram holds " << histogram.count()
       << " samples but the event stream closes " << resolved
       << " block intervals";
    fail(os.str());
  }
  const double hist_total = histogram.mean() * histogram.count();
  const double rounding =
      1e-9 * (static_cast<double>(resolved) + 1.0) +
      1e-12 * std::abs(event_wait_total);
  if (std::abs(hist_total - event_wait_total) > rounding) {
    std::ostringstream os;
    os << "wait histogram total " << hist_total
       << "s != event-derived wait total " << event_wait_total << "s";
    fail(os.str());
  }

  if (gate.waits > blocks) {
    std::ostringstream os;
    os << "gate counted " << gate.waits << " waits but the monitor only "
       << blocks << " blocks — a sleep with no block event";
    fail(os.str());
  }
  // The other direction: every block must be accounted for as a logical
  // wait, a no-sleep second-look admission, or a withdrawn (cancelled)
  // request. Timed-out waiters both sleep AND cancel, so this is an
  // inequality, not an identity — but a gate that loses wait accounting
  // (or stops counting under sliced waits) falls below it.
  if (gate.waits + gate.no_sleep_blocks + cancelled < blocks) {
    std::ostringstream os;
    os << "the monitor counted " << blocks << " blocks but the gate only "
       << gate.waits << " waits + " << gate.no_sleep_blocks
       << " no-sleep blocks (+" << cancelled
       << " cancelled) — a block whose wait was never accounted";
    fail(os.str());
  }
  const double slack =
      gate.slack_seconds * (static_cast<double>(blocks) + 1.0);
  if (std::abs(gate.total_wait_seconds - event_wait_total) > slack) {
    std::ostringstream os;
    os << "gate total_wait_seconds " << gate.total_wait_seconds
       << "s disagrees with the event-derived total " << event_wait_total
       << "s by more than " << slack << "s";
    fail(os.str());
  }

  if (!errors.empty()) {
    report.ok = false;
    std::ostringstream os;
    for (std::size_t i = 0; i < errors.size(); ++i) {
      if (i) os << "\n";
      os << errors[i];
    }
    report.message = os.str();
  }
  return report;
}

ReconcileReport reconcile_resources(std::span<const ResourceRow> resources,
                                    bool expect_quiescent) {
  ReconcileReport report;
  std::vector<std::string> errors;
  const auto fail = [&](const std::string& what) { errors.push_back(what); };

  for (const ResourceRow& row : resources) {
    const std::string name(to_string(row.kind));
    // Megabyte-scale increment/decrement churn leaves ~1e-2-byte residues;
    // scale the tolerance like AdmissionCore::audit does.
    const double tol = 1e-3 * std::max(1.0, row.capacity);
    if (!std::isinf(row.bound)) {
      const double lhs = row.usage + row.free - row.overdraft;
      if (std::abs(lhs - row.bound) > tol) {
        std::ostringstream os;
        os << name << ": usage (" << row.usage << ") + free (" << row.free
           << ") - overdraft (" << row.overdraft
           << ") != admission bound (" << row.bound << ")";
        fail(os.str());
      }
    }
    if (row.overdraft < -tol) {
      fail(name + ": negative overdraft");
    }
    if (row.oversubscribed < -tol) {
      fail(name + ": negative oversubscription tally");
    }
    if (expect_quiescent) {
      if (std::abs(row.usage) > tol) {
        std::ostringstream os;
        os << name << ": usage " << row.usage << " did not return to zero";
        fail(os.str());
      }
      if (std::abs(row.overdraft) > tol) {
        std::ostringstream os;
        os << name << ": overdraft " << row.overdraft
           << " did not return to zero";
        fail(os.str());
      }
      if (std::abs(row.oversubscribed) > tol) {
        std::ostringstream os;
        os << name << ": oversubscription tally " << row.oversubscribed
           << " did not return to zero";
        fail(os.str());
      }
    }
  }

  if (!errors.empty()) {
    report.ok = false;
    std::ostringstream os;
    for (std::size_t i = 0; i < errors.size(); ++i) {
      if (i) os << "\n";
      os << errors[i];
    }
    report.message = os.str();
  }
  return report;
}

}  // namespace rda::obs
