// Reproduces paper Figure 7: energy (Joules) consumed by the whole system
// (CPU + cache + DRAM) for the eight Table-2 workloads under the Linux
// default, RDA:Strict, and RDA:Compromise scheduling policies.
//
// Also prints the §4.2 headline aggregation (the paper: max 48% energy
// decrease, average 12%; max 1.88x speedup, average 1.16x).
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  std::cout << "=== Figure 7: system energy (CPU + cache + DRAM), Joules ==="
            << "\n(lower is better; paper Fig. 7)\n\n";
  const bench::FigureData data =
      bench::run_all_workloads(bench::quick_requested(argc, argv),
                               bench::jobs_requested(argc, argv));
  const bool csv = bench::csv_requested(argc, argv);

  bench::print_metric_table(data, "system energy [J]", 0,
                            [](const exp::RunRow& row) {
                              return row.system_joules;
                            }, csv);
  if (csv) return 0;

  util::Table drops({"workload", "best RDA policy", "energy drop vs Linux"});
  for (std::size_t i = 0; i < data.comparisons.size(); ++i) {
    const exp::PolicyComparison& cmp = data.comparisons[i];
    const exp::RunRow& best = cmp.best_rda_by_energy();
    drops.begin_row()
        .add_cell(data.specs[i].name)
        .add_cell(best.policy)
        .add_cell(std::to_string(
                      static_cast<int>(100.0 * cmp.energy_drop(best))) +
                  "%");
  }
  std::cout << drops.render() << "\n";

  const exp::Headline h = exp::summarize(data.comparisons);
  std::cout << "headline (paper: max -48% / avg -12% energy; max 1.88x / "
               "avg 1.16x speedup)\n"
            << "  max energy drop: " << static_cast<int>(100 * h.max_energy_drop)
            << "%\n  avg energy drop: "
            << static_cast<int>(100 * h.avg_energy_drop)
            << "%\n  max speedup:     " << h.max_speedup
            << "x\n  avg speedup:     " << h.avg_speedup << "x\n";
  return 0;
}
