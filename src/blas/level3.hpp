// BLAS level-3 kernels (matrix–matrix): dgemm, dsyrk, dtrmm(ru), dtrsm(ru).
//
// The paper's BLAS-3 workload (Table 2): high cache reuse. dgemm is
// cache-blocked ("optimized with loop blocking so that individually its
// working set size fits within the last-level cache", §4.1); the naive
// variants exist as test oracles. All matrices are dense row-major.
#pragma once

#include <cstddef>
#include <span>

namespace rda::blas {

/// Cache-blocking tile edge (doubles). 3 tiles of 96x96 doubles ≈ 216 KB —
/// comfortably inside a 256 KB private L2.
inline constexpr std::size_t kGemmBlock = 96;

/// C := alpha*A*B + beta*C; A m×k, B k×n, C m×n. Cache-blocked.
void dgemm(std::size_t m, std::size_t n, std::size_t k, double alpha,
           std::span<const double> a, std::span<const double> b, double beta,
           std::span<double> c);

/// Reference triple loop (test oracle).
void dgemm_naive(std::size_t m, std::size_t n, std::size_t k, double alpha,
                 std::span<const double> a, std::span<const double> b,
                 double beta, std::span<double> c);

/// C := alpha*A*A^T + beta*C, updating the upper triangle only; A n×k.
void dsyrk_upper(std::size_t n, std::size_t k, double alpha,
                 std::span<const double> a, double beta, std::span<double> c);

/// B := B*U (right-side multiply by the upper triangle of the n×n matrix a);
/// B is m×n. The paper's dtrmm(ru).
void dtrmm_ru(std::size_t m, std::size_t n, std::span<const double> a,
              std::span<double> b);

/// Solves X*U = B for X in place (B holds the solution on exit); U upper
/// triangular non-unit n×n, B m×n. The paper's dtrsm(ru).
void dtrsm_ru(std::size_t m, std::size_t n, std::span<const double> a,
              std::span<double> b);

inline double dgemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}
inline double dsyrk_flops(std::size_t n, std::size_t k) {
  return static_cast<double>(n) * static_cast<double>(n + 1) *
         static_cast<double>(k);
}
inline double dtrmm_flops(std::size_t m, std::size_t n) {
  return static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(n);
}
inline double dtrsm_flops(std::size_t m, std::size_t n) {
  return static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(n);
}

}  // namespace rda::blas
