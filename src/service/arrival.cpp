#include "service/arrival.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace rda::service {

std::string_view to_string(ArrivalShape shape) {
  switch (shape) {
    case ArrivalShape::kPoisson: return "poisson";
    case ArrivalShape::kDiurnal: return "diurnal";
    case ArrivalShape::kBursty: return "bursty";
  }
  return "?";
}

namespace {

/// Exponential gap with mean 1/rate. 1 - u is in (0, 1], so the log is
/// finite and the gap strictly positive.
double exponential_gap(util::Rng& rng, double rate) {
  return -std::log(1.0 - rng.next_double()) / rate;
}

}  // namespace

ArrivalGenerator::ArrivalGenerator(ArrivalConfig config)
    : config_(config), rng_(config.seed) {
  RDA_CHECK_MSG(config_.rate > 0.0, "arrival rate must be positive");
  RDA_CHECK_MSG(config_.tenants >= 1, "need at least one tenant");
  RDA_CHECK_MSG(config_.diurnal_amplitude >= 0.0 &&
                    config_.diurnal_amplitude < 1.0,
                "diurnal amplitude must be in [0, 1)");
  RDA_CHECK_MSG(config_.burst_fraction > 0.0 && config_.burst_fraction < 1.0,
                "burst fraction must be in (0, 1)");
  RDA_CHECK_MSG(config_.burst_multiplier >= 1.0,
                "burst multiplier must be >= 1");
}

double ArrivalGenerator::next_gap() {
  switch (config_.shape) {
    case ArrivalShape::kPoisson:
      return exponential_gap(rng_, config_.rate);
    case ArrivalShape::kDiurnal: {
      // Thinning (Lewis & Shedler): propose at the peak rate, accept a
      // proposal at t with probability λ(t)/λ_max. Rejected proposals
      // advance time, so the accepted stream follows λ(t) exactly.
      const double peak = config_.rate * (1.0 + config_.diurnal_amplitude);
      double t = time_;
      for (;;) {
        t += exponential_gap(rng_, peak);
        const double phase = 2.0 * std::numbers::pi * t /
                             config_.diurnal_period_seconds;
        const double lambda =
            config_.rate *
            (1.0 + config_.diurnal_amplitude * std::sin(phase));
        if (rng_.next_double() * peak < lambda) return t - time_;
      }
    }
    case ArrivalShape::kBursty: {
      // Two-state MMPP with the long-run mean pinned to config_.rate:
      //   rate = f·on + (1-f)·off   with   on = m·off
      // ⇒ off = rate / (f·m + 1 - f).
      const double f = config_.burst_fraction;
      const double m = config_.burst_multiplier;
      const double off_rate = config_.rate / (f * m + 1.0 - f);
      const double on_rate = m * off_rate;
      const double on_hold = config_.burst_mean_seconds;
      const double off_hold = on_hold * (1.0 - f) / f;
      double t = time_;
      for (;;) {
        if (t >= state_ends_) {
          // Entering a fresh state (the stream starts quiet); draw its
          // exponential holding time.
          burst_on_ = state_ends_ == 0.0 ? false : !burst_on_;
          state_ends_ =
              t + exponential_gap(rng_, 1.0 / (burst_on_ ? on_hold
                                                         : off_hold));
        }
        const double gap =
            exponential_gap(rng_, burst_on_ ? on_rate : off_rate);
        if (t + gap <= state_ends_) return t + gap - time_;
        t = state_ends_;  // gap crossed the state boundary: redraw there
      }
    }
  }
  RDA_CHECK_MSG(false, "unreachable arrival shape");
  return 0.0;
}

Arrival ArrivalGenerator::next() {
  time_ += next_gap();

  Arrival a;
  a.time = time_;
  a.seq = seq_++;
  if (config_.tenants == 1 || rng_.next_bool(config_.hot_tenant_share)) {
    a.tenant = 1;
  } else {
    a.tenant = 2 + rng_.next_below(config_.tenants - 1);
  }
  const auto jitter = [&](double mean, double spread) {
    return mean * (1.0 - spread + 2.0 * spread * rng_.next_double());
  };
  a.demand_bytes = jitter(config_.demand_mean_bytes, config_.demand_spread);
  a.service_seconds =
      jitter(config_.service_mean_seconds, config_.service_spread);
  if (config_.bw_mean_bytes_per_sec > 0.0) {
    a.bw_bytes_per_sec =
        jitter(config_.bw_mean_bytes_per_sec, config_.bw_spread);
  }
  if (config_.watts_mean > 0.0) {
    a.watts = jitter(config_.watts_mean, config_.watts_spread);
  }
  return a;
}

}  // namespace rda::service
