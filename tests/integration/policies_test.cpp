// End-to-end policy behaviour on (scaled-down) paper workloads. These pin
// the directional claims of §4.2:
//   * high-reuse workloads (BLAS-3-like) gain performance AND energy from
//     RDA scheduling,
//   * low-reuse workloads (BLAS-1-like) do not gain (RDA at best ties,
//     typically loses a little to reduced concurrency),
//   * Strict never oversubscribes the LLC, Compromise stays within 2x.
#include <gtest/gtest.h>

#include "exp/harness.hpp"
#include "util/units.hpp"

namespace rda::exp {
namespace {

using rda::util::MB;

sim::EngineConfig paper_engine() {
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  return cfg;
}

workload::WorkloadSpec cheap(const std::string& name) {
  const auto specs = workload::table2_workloads();
  // Quarter the processes and an eighth of the flops: decisions preserved,
  // runtime in milliseconds.
  return workload::scale_workload(workload::find_workload(specs, name),
                                  /*flop_scale=*/0.125, /*proc_divisor=*/4);
}

TEST(Policies, HighReuseWorkloadGainsFromStrict) {
  const PolicyComparison cmp = compare_policies(cheap("BLAS-3"),
                                                paper_engine());
  // The paper's central claim: fewer co-runners, better cache residency,
  // higher throughput AND lower energy.
  EXPECT_GT(cmp.strict.gflops, cmp.baseline.gflops * 1.05);
  EXPECT_LT(cmp.strict.system_joules, cmp.baseline.system_joules);
  EXPECT_LT(cmp.strict.dram_joules, cmp.baseline.dram_joules);
}

TEST(Policies, LowReuseWorkloadDoesNotGain) {
  const PolicyComparison cmp = compare_policies(cheap("BLAS-1"),
                                                paper_engine());
  // §4.2: "workloads with low data reuses ... attained results inferior to
  // the Linux default scheduling policy" — allow a tie, forbid a big win.
  EXPECT_LT(cmp.strict.gflops, cmp.baseline.gflops * 1.05);
}

TEST(Policies, CompromiseBetweenBaselineAndStrictConcurrency) {
  const PolicyComparison cmp = compare_policies(cheap("BLAS-3"),
                                                paper_engine());
  // Compromise admits more than Strict (it blocks less).
  EXPECT_LE(cmp.compromise.gate_blocks, cmp.strict.gate_blocks);
  // And still beats the baseline on energy for high-reuse work.
  EXPECT_LT(cmp.compromise.system_joules, cmp.baseline.system_joules);
}

TEST(Policies, StrictReducesDramTrafficMost) {
  const PolicyComparison cmp = compare_policies(cheap("Water_nsq"),
                                                paper_engine());
  // §4.2: "the strict policy almost always resulted in better LLC
  // utilization than the compromise configuration" (less DRAM energy).
  EXPECT_LE(cmp.strict.dram_joules, cmp.compromise.dram_joules * 1.02);
  EXPECT_LT(cmp.strict.dram_joules, cmp.baseline.dram_joules);
}

TEST(Policies, AllWorkDoneUnderEveryPolicy) {
  const auto spec = cheap("Ocean_cp");
  const PolicyComparison cmp = compare_policies(spec, paper_engine());
  EXPECT_NEAR(cmp.strict.total_flops, cmp.baseline.total_flops,
              1e-6 * cmp.baseline.total_flops);
  EXPECT_NEAR(cmp.compromise.total_flops, cmp.baseline.total_flops,
              1e-6 * cmp.baseline.total_flops);
}

TEST(Policies, PoolWorkloadCompletesUnderStrict) {
  // Raytrace is the task-pool workload; §3.4 group semantics must not
  // deadlock it.
  const PolicyComparison cmp = compare_policies(cheap("Raytrace"),
                                                paper_engine());
  EXPECT_GT(cmp.strict.total_flops, 0.0);
  EXPECT_NEAR(cmp.strict.total_flops, cmp.baseline.total_flops,
              1e-6 * cmp.baseline.total_flops);
}

TEST(Policies, EnergyCapHoldsDynamicPowerAtTheBudget) {
  // Multi-resource headline: 12 compute periods each declaring one core's
  // dynamic power (5.2 W) under a 21 W package budget on the 12-core
  // machine. The gate must serialize down to ~4 concurrent periods and the
  // MEASURED dynamic power (Fig. 10 energy machinery minus the idle floor)
  // must respect the declared budget; ungated, the same work draws ~3x.
  const double cap_watts = 21.0;
  auto run = [&](bool capped) {
    sim::EngineConfig cfg;
    cfg.machine = sim::MachineConfig::e5_2420();
    sim::Engine engine(cfg);
    core::RdaOptions options;
    options.policy = core::PolicyKind::kStrict;
    options.energy_capacity_watts = capped ? cap_watts : 0.0;
    core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                            cfg.calib, options);
    engine.set_gate(&gate);
    for (int i = 0; i < 12; ++i) {
      engine.add_thread(engine.create_process(),
                        sim::ProgramBuilder()
                            .period("compute", 2e8, MB(1), ReuseLevel::kHigh)
                            .watts(5.2)
                            .build());
    }
    return engine.run();
  };
  const sim::SimResult capped = run(true);
  const sim::SimResult free_run = run(false);
  const double idle_floor =
      12.0 * 0.8 + 12.0 + 4.0;  // idle cores + uncore + DRAM static
  const double capped_dynamic =
      capped.system_joules() / capped.makespan - idle_floor;
  const double free_dynamic =
      free_run.system_joules() / free_run.makespan - idle_floor;
  EXPECT_LE(capped_dynamic, cap_watts * 1.05);
  EXPECT_GT(free_dynamic, cap_watts);     // the cap actually binds
  EXPECT_GT(capped.gate_blocks, 0u);      // periods really waited on watts
  EXPECT_NEAR(capped.total_flops, free_run.total_flops,
              1e-6 * free_run.total_flops);  // no work lost to the cap
}

TEST(Policies, HeadlineAggregationShapes) {
  std::vector<PolicyComparison> comparisons;
  for (const char* name : {"BLAS-1", "BLAS-3"}) {
    comparisons.push_back(compare_policies(cheap(name), paper_engine()));
  }
  const Headline h = summarize(comparisons);
  EXPECT_GT(h.max_speedup, 1.0);
  EXPECT_GE(h.max_speedup, h.avg_speedup);
  EXPECT_GE(h.max_energy_drop, h.avg_energy_drop);
}

}  // namespace
}  // namespace rda::exp
