file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/feedback_test.cpp.o"
  "CMakeFiles/core_test.dir/core/feedback_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/multi_resource_test.cpp.o"
  "CMakeFiles/core_test.dir/core/multi_resource_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/partitioning_test.cpp.o"
  "CMakeFiles/core_test.dir/core/partitioning_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/policy_test.cpp.o"
  "CMakeFiles/core_test.dir/core/policy_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/progress_monitor_test.cpp.o"
  "CMakeFiles/core_test.dir/core/progress_monitor_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/rda_scheduler_test.cpp.o"
  "CMakeFiles/core_test.dir/core/rda_scheduler_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/registry_test.cpp.o"
  "CMakeFiles/core_test.dir/core/registry_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/resource_monitor_test.cpp.o"
  "CMakeFiles/core_test.dir/core/resource_monitor_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/waitlist_test.cpp.o"
  "CMakeFiles/core_test.dir/core/waitlist_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
