// Set-associative LRU cache simulator.
//
// Two roles:
//   1. Validation substrate for the fluid occupancy model (sim/cache_model):
//      the engine's analytic miss rates should agree in shape with a real
//      LRU cache replaying the same access patterns
//      (tests/sim/assoc_cache_test.cpp, bench/validate_cache_model).
//   2. Mechanism for the paper's §6 future-work extension: way partitioning
//      ("we can partition the cache and give this application only a small
//      portion"). Owners can be confined to a subset of the ways.
//
// Addresses are attributed to an owner (thread) so per-owner occupancy and
// hit ratios can be compared against the fluid model.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/ids.hpp"

namespace rda::sim {

struct AssocCacheConfig {
  std::uint64_t capacity_bytes = 15360 * 1024ull;  // paper Table 1 LLC
  std::uint32_t ways = 20;                         // E5-2420 L3 is 20-way
  std::uint32_t line_bytes = 64;
};

struct AssocCacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  double hit_ratio() const {
    return accesses ? static_cast<double>(hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  double miss_ratio() const { return accesses ? 1.0 - hit_ratio() : 0.0; }
};

class SetAssociativeCache {
 public:
  explicit SetAssociativeCache(AssocCacheConfig config = {});

  /// Performs one access; returns true on hit. `owner` attributes the line.
  bool access(std::uint64_t address, ThreadId owner);

  /// Confines an owner's fills to ways [0, allowed_ways). Pass `ways()` (or
  /// anything >= it) to lift the restriction. Hits outside the partition
  /// still count (data already resident is not flushed).
  void set_partition(ThreadId owner, std::uint32_t allowed_ways);
  void clear_partition(ThreadId owner);

  /// Evicts every line owned by `owner` (used when a phase ends).
  void flush_owner(ThreadId owner);

  std::uint64_t occupancy_lines(ThreadId owner) const;
  std::uint64_t occupancy_bytes(ThreadId owner) const;

  const AssocCacheStats& stats() const { return stats_; }
  AssocCacheStats owner_stats(ThreadId owner) const;

  std::uint32_t ways() const { return ways_; }
  std::uint32_t sets() const { return sets_; }
  std::uint64_t capacity_bytes() const { return config_.capacity_bytes; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;  ///< global access counter for LRU
    ThreadId owner = kInvalidThread;
    bool valid = false;
  };

  Line* find_line(std::uint64_t set, std::uint64_t tag);
  Line* pick_victim(std::uint64_t set, std::uint32_t allowed_ways);

  AssocCacheConfig config_;
  std::uint32_t ways_ = 0;
  std::uint32_t sets_ = 0;
  std::vector<Line> lines_;  ///< sets_ x ways_, row-major
  std::unordered_map<ThreadId, std::uint32_t> partitions_;
  std::unordered_map<ThreadId, std::uint64_t> owner_lines_;
  std::unordered_map<ThreadId, AssocCacheStats> owner_stats_;
  AssocCacheStats stats_;
  std::uint64_t clock_ = 0;
};

}  // namespace rda::sim
