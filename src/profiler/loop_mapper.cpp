#include "profiler/loop_mapper.hpp"

namespace rda::prof {

MappedPeriod LoopMapper::map(const DetectedPeriod& period) const {
  MappedPeriod mapped;
  mapped.period = period;
  if (period.dominant_jump_pc != 0) {
    mapped.innermost_loop =
        nest_->innermost_containing(period.dominant_jump_pc);
    if (mapped.innermost_loop) {
      mapped.boundary_loop = nest_->outermost_ancestor(*mapped.innermost_loop);
    }
  }
  return mapped;
}

std::vector<MappedPeriod> LoopMapper::map_all(
    const std::vector<DetectedPeriod>& periods) const {
  std::vector<MappedPeriod> out;
  out.reserve(periods.size());
  for (const auto& p : periods) out.push_back(map(p));
  return out;
}

}  // namespace rda::prof
