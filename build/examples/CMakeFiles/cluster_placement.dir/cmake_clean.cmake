file(REMOVE_RECURSE
  "CMakeFiles/cluster_placement.dir/cluster_placement.cpp.o"
  "CMakeFiles/cluster_placement.dir/cluster_placement.cpp.o.d"
  "cluster_placement"
  "cluster_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
