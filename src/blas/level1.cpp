#include "blas/level1.hpp"

#include <utility>

#include "util/check.hpp"

namespace rda::blas {

void daxpy(double alpha, std::span<const double> x, std::span<double> y) {
  RDA_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void dcopy(std::span<const double> x, std::span<double> y) {
  RDA_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i];
}

void dscal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

void dswap(std::span<double> x, std::span<double> y) {
  RDA_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) std::swap(x[i], y[i]);
}

}  // namespace rda::blas
