// TraceError — malformed / truncated trace file, with the byte offset at
// which the parse gave up.
//
// Derives from util::CheckFailure so every existing catch site (the tools'
// top-level handlers, exp::run_matrix's per-cell isolation) keeps working
// unchanged, while new code can catch TraceError specifically and report the
// precise corruption point.
#pragma once

#include <cstdint>
#include <string>

#include "util/check.hpp"

namespace rda::trace {

class TraceError : public util::CheckFailure {
 public:
  TraceError(const std::string& what, std::uint64_t byte_offset)
      : util::CheckFailure(what), byte_offset_(byte_offset) {}

  /// File offset of the first byte that could not be parsed.
  std::uint64_t byte_offset() const { return byte_offset_; }

 private:
  std::uint64_t byte_offset_ = 0;
};

[[noreturn]] inline void trace_error(const std::string& path,
                                     std::uint64_t byte_offset,
                                     const std::string& why) {
  throw TraceError(
      path + ": " + why + " (at byte " + std::to_string(byte_offset) + ")",
      byte_offset);
}

}  // namespace rda::trace
