#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rda::sim {

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      llc_(config_.machine.llc_bytes),
      energy_(config_.calib, config_.machine.cores) {
  RDA_CHECK(config_.machine.cores > 0);
  RDA_CHECK(config_.max_step > 0.0);
  cores_.resize(static_cast<std::size_t>(config_.machine.cores));
  core_ready_.resize(cores_.size());
}

ProcessId Engine::create_process() {
  processes_.emplace_back();
  return static_cast<ProcessId>(processes_.size() - 1);
}

ThreadId Engine::add_thread(ProcessId process, PhaseProgram program) {
  RDA_CHECK_MSG(!ran_, "cannot add threads after run()");
  RDA_CHECK(process < processes_.size());
  Thread t;
  t.id = static_cast<ThreadId>(threads_.size());
  t.process = process;
  t.program = std::move(program);
  t.state = ThreadState::kReady;
  t.home_core = static_cast<int>(threads_.size() % cores_.size());
  // The phases vector's heap buffer is stable across the Thread move below
  // and across threads_ reallocation, so the cached pointer stays valid.
  bind_phase(t);
  threads_.push_back(std::move(t));
  processes_[process].members.push_back(threads_.back().id);
  return threads_.back().id;
}

void Engine::set_gate(PhaseGate* gate) { gate_ = gate; }

void Engine::trace(obs::EventKind kind, const Thread& t) const {
  if (config_.trace_sink == nullptr) return;
  const PhaseSpec& phase = current_phase(t);
  obs::Event e;
  e.time = now_;
  e.kind = kind;
  e.thread = t.id;
  e.process = t.process;
  e.demand = static_cast<double>(phase.wss_bytes);
  e.set_label(phase.label);
  config_.trace_sink->record(e);
}

bool Engine::needs_point_processing(const Thread& t) const {
  if (t.state != ThreadState::kRunning) return false;
  if (t.pending_overhead > kTimeEpsilon) return false;
  if (t.point != Point::kBody) return true;
  return t.remaining <= kFlopEpsilon;
}

void Engine::enqueue_ready(Thread& t) {
  t.state = ThreadState::kReady;
  // A thread that slept keeps its vruntime but may not lag the pack —
  // standard CFS wake-up placement.
  t.vruntime = std::max(t.vruntime, vclock_);
  if (config_.scheduler == SchedulerMode::kPerCoreQueues) {
    core_ready_[static_cast<std::size_t>(t.home_core)].push(t.vruntime, t.id);
  } else {
    ready_.push(t.vruntime, t.id);
  }
}

bool Engine::any_ready() const {
  if (config_.scheduler == SchedulerMode::kPerCoreQueues) {
    for (const auto& q : core_ready_) {
      if (!q.empty()) return true;
    }
    return false;
  }
  return !ready_.empty();
}

ThreadId Engine::pop_for_core(std::size_t core) {
  ReadyQueue& own = core_ready_[core];
  if (!own.empty()) return own.pop_min().second;
  // Idle stealing: take the min-vruntime thread from the fullest queue.
  std::size_t victim = core;
  std::size_t best_size = 0;
  for (std::size_t c = 0; c < core_ready_.size(); ++c) {
    if (core_ready_[c].size() > best_size) {
      best_size = core_ready_[c].size();
      victim = c;
    }
  }
  if (best_size == 0) return kInvalidThread;
  const ThreadId tid = core_ready_[victim].pop_min().second;
  Thread& t = threads_[tid];
  t.home_core = static_cast<int>(core);  // migrate
  t.pending_overhead += config_.calib.migration_cost;
  ++result_.migrations;
  return tid;
}

ThreadId Engine::pop_ready() { return ready_.pop_min().second; }

bool Engine::dispatch() {
  bool placed = false;
  const bool per_core = config_.scheduler == SchedulerMode::kPerCoreQueues;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    Core& core = cores_[c];
    if (core.running != kInvalidThread) continue;
    ThreadId tid = kInvalidThread;
    if (per_core) {
      tid = pop_for_core(c);
      if (tid == kInvalidThread) continue;
    } else {
      if (ready_.empty()) break;
      tid = pop_ready();
    }
    Thread& t = threads_[tid];
    t.state = ThreadState::kRunning;
    t.core = static_cast<int>(c);
    vclock_ = std::max(vclock_, t.vruntime);
    if (core.last != kInvalidThread && core.last != tid) {
      t.pending_overhead += config_.calib.context_switch_cost;
      ++result_.context_switches;
    }
    core.running = tid;
    core.quantum_end = now_ + config_.calib.quantum;
    placed = true;
  }
  return placed;
}

void Engine::release_core(Thread& t) {
  if (t.core < 0) return;
  Core& core = cores_[static_cast<std::size_t>(t.core)];
  RDA_CHECK(core.running == t.id);
  core.running = kInvalidThread;
  core.last = t.id;
  t.core = -1;
}

void Engine::block(Thread& t, ThreadState blocked_state) {
  release_core(t);
  t.state = blocked_state;
  t.block_since = now_;
  // Parked long enough to lose the cache: co-runners evict a sleeper's
  // lines, so the inherited occupancy is forfeited.
  t.carry_occupancy = 0.0;
}

void Engine::finish(Thread& t) {
  release_core(t);
  t.state = ThreadState::kFinished;
  t.stats.finish_time = now_;
  ++finished_count_;
  barrier_check(processes_[t.process]);
}

int Engine::alive_members(const Process& p) const {
  int alive = 0;
  for (ThreadId tid : p.members) {
    if (threads_[tid].state != ThreadState::kFinished) ++alive;
  }
  return alive;
}

void Engine::barrier_check(Process& p) {
  if (p.barrier_arrivals == 0) return;
  if (p.barrier_arrivals < alive_members(p)) return;
  p.barrier_arrivals = 0;
  for (ThreadId tid : p.members) {
    Thread& m = threads_[tid];
    if (m.state == ThreadState::kBarrierBlocked) {
      m.stats.gate_blocked_time += 0.0;  // barrier time is not gate time
      enqueue_ready(m);
    }
  }
}

void Engine::process_points(Thread& t) {
  // Bounded loop: each iteration either consumes a phase transition or
  // returns; a program has finitely many phases.
  for (int guard = 0; guard < 1 << 20; ++guard) {
    if (t.state != ThreadState::kRunning) return;
    if (t.pending_overhead > kTimeEpsilon) return;

    switch (t.point) {
      case Point::kBegin: {
        const PhaseSpec& phase = current_phase(t);
        if (phase.marked && gate_ != nullptr && !t.admitted) {
          const BeginResult r =
              gate_->on_phase_begin(t.id, t.process, phase, now_);
          ++result_.api_calls;
          t.pending_overhead += r.call_cost;
          t.pending_cap = r.occupancy_cap;
          if (!r.admit) {
            ++result_.gate_blocks;
            trace(obs::EventKind::kBlock, t);
            // The paper parks the caller on a kernel wait queue; the API
            // cost is burned when it resumes.
            block(t, ThreadState::kGateBlocked);
            if (config_.fault_injector != nullptr) {
              const fault::FaultSpec* fired = config_.fault_injector->consult(
                  fault::Hook::kBlock, t.id);
              if (fired != nullptr &&
                  fired->kind == fault::FaultKind::kThreadDeath) {
                kill_thread(t);  // dies while parked on the waitlist
              }
            }
            return;
          }
          ++result_.gate_admissions;
          t.admitted = true;
          if (config_.fault_injector != nullptr) {
            const fault::FaultSpec* fired = config_.fault_injector->consult(
                fault::Hook::kAdmit, t.id);
            if (fired != nullptr &&
                fired->kind == fault::FaultKind::kThreadDeath) {
              kill_thread(t);  // dies holding admitted capacity
              return;
            }
          }
          if (t.pending_overhead > kTimeEpsilon) return;  // burn cost first
        }
        double cap = 0.0;
        if (gate_ != nullptr) {
          cap = phase.marked ? t.pending_cap : config_.unannotated_cap_bytes;
        }
        llc_.phase_enter(t.id, phase.wss_bytes, t.carry_occupancy, cap);
        trace(obs::EventKind::kBegin, t);
        t.carry_occupancy = 0.0;
        t.pending_cap = 0.0;
        t.point = Point::kBody;
        t.remaining = phase.flops;
        t.phase_body_start = now_;
        t.phase_occ_integral = 0.0;
        t.phase_occ_peak = llc_.occupancy_bytes(t.id);
        t.phase_dram_start = t.stats.dram_bytes;
        t.phase_flops_start = t.stats.flops;
        t.phase_contended = false;
        break;
      }
      case Point::kBody: {
        if (t.remaining > kFlopEpsilon) return;  // keep executing
        t.remaining = 0.0;
        trace(obs::EventKind::kEnd, t);
        const PhaseSpec& phase = current_phase(t);
        if (phase.marked && gate_ != nullptr) {
          PhaseObservation observed;
          observed.duration = std::max(0.0, now_ - t.phase_body_start);
          observed.peak_occupancy =
              std::max(t.phase_occ_peak, llc_.occupancy_bytes(t.id));
          observed.avg_occupancy =
              observed.duration > 0.0
                  ? t.phase_occ_integral / observed.duration
                  : observed.peak_occupancy;
          observed.dram_bytes = t.stats.dram_bytes - t.phase_dram_start;
          observed.flops = t.stats.flops - t.phase_flops_start;
          observed.cache_contended = t.phase_contended;
          t.carry_occupancy = llc_.phase_exit(t.id);
          const EndResult e =
              gate_->on_phase_end(t.id, t.process, phase, observed, now_);
          ++result_.api_calls;
          t.pending_overhead += e.call_cost;
        } else {
          t.carry_occupancy = llc_.phase_exit(t.id);
        }
        t.point = Point::kEnd;
        break;
      }
      case Point::kEnd: {
        const PhaseSpec& phase = current_phase(t);
        if (phase.barrier_after) {
          Process& p = processes_[t.process];
          ++p.barrier_arrivals;
          if (p.barrier_arrivals < alive_members(p)) {
            t.point = Point::kAdvance;
            block(t, ThreadState::kBarrierBlocked);
            return;
          }
          // Last arriver releases everyone (including itself).
          t.point = Point::kAdvance;
          barrier_check(p);
          break;
        }
        t.point = Point::kAdvance;
        break;
      }
      case Point::kAdvance: {
        ++t.phase_index;
        t.admitted = false;
        bind_phase(t);
        if (t.phase == nullptr) {
          finish(t);
          return;
        }
        t.point = Point::kBegin;
        break;
      }
    }
  }
  RDA_CHECK_MSG(false, "process_points did not converge for thread " << t.id);
}

void Engine::settle() {
  for (int guard = 0; guard < 1 << 20; ++guard) {
    const bool placed = dispatch();
    bool processed = false;
    for (Core& core : cores_) {
      if (core.running == kInvalidThread) continue;
      Thread& t = threads_[core.running];
      if (needs_point_processing(t)) {
        process_points(t);
        processed = true;
      }
    }
    if (!placed && !processed) return;
  }
  RDA_CHECK_MSG(false, "settle did not converge");
}

double Engine::compute_interval(const std::vector<PhaseRate>& rates,
                                const std::vector<ThreadId>& running) const {
  double dt = config_.max_step;
  for (std::size_t i = 0; i < running.size(); ++i) {
    const Thread& t = threads_[running[i]];
    if (t.pending_overhead > kTimeEpsilon) {
      dt = std::min(dt, t.pending_overhead);
    } else if (rates[i].flops_per_sec > 0.0) {
      dt = std::min(dt, t.remaining / rates[i].flops_per_sec);
    }
    const Core& core = cores_[static_cast<std::size_t>(t.core)];
    dt = std::min(dt, core.quantum_end - now_);
  }
  return std::max(dt, 1e-9);  // always make progress
}

SimResult Engine::run() {
  RDA_CHECK_MSG(!ran_, "Engine::run is single-shot");
  ran_ = true;
  if (gate_ != nullptr) gate_->attach(*this);
  for (Thread& t : threads_) enqueue_ready(t);

  std::vector<ThreadId> running;
  std::vector<PhaseRate> rates;
  std::vector<RateRequest> requests;
  std::vector<FillTraffic> fills;

  while (finished_count_ < threads_.size()) {
    settle();
    if (finished_count_ >= threads_.size()) break;
    if (now_ >= config_.time_limit) {
      result_.hit_time_limit = true;
      break;
    }

    running.clear();
    for (const Core& core : cores_) {
      if (core.running != kInvalidThread) running.push_back(core.running);
    }
    if (running.empty()) {
      RDA_CHECK_MSG(!any_ready(),
                    "ready threads exist but no core took them");
      // Before declaring deadlock, try recovery: resume threads whose wake
      // was lost, then let the gate escalate (watchdog) or reject waiters.
      if (recover_stall()) continue;
      RDA_CHECK_MSG(false,
                    "scheduler deadlock: all unfinished threads are blocked");
    }

    // Rates for working threads; overhead-burning threads run at rate 0.
    requests.clear();
    for (ThreadId tid : running) {
      const Thread& t = threads_[tid];
      RateRequest req;
      if (t.pending_overhead > kTimeEpsilon || t.point != Point::kBody) {
        req.reuse = ReuseLevel::kLow;
        req.resident_fraction = 1.0;  // no memory traffic while in overhead
      } else {
        req.reuse = current_phase(t).reuse;
        req.resident_fraction = llc_.resident_fraction(tid);
      }
      requests.push_back(req);
    }
    rate_solver_.solve(config_.calib, requests, config_.machine.dram_bandwidth,
                       rates);
    // Zero out rates for overhead-burning threads (their request was a
    // placeholder so the vector stays aligned).
    for (std::size_t i = 0; i < running.size(); ++i) {
      const Thread& t = threads_[running[i]];
      if (t.pending_overhead > kTimeEpsilon || t.point != Point::kBody) {
        rates[i] = PhaseRate{};
      }
    }

    const double dt = compute_interval(rates, running);
    ++result_.sim_steps;

    // Integrate the interval.
    fills.clear();
    double interval_dram = 0.0;
    for (std::size_t i = 0; i < running.size(); ++i) {
      Thread& t = threads_[running[i]];
      t.stats.cpu_time += dt;
      t.vruntime += dt;
      if (t.pending_overhead > kTimeEpsilon) {
        t.pending_overhead = std::max(0.0, t.pending_overhead - dt);
        continue;
      }
      const PhaseRate& r = rates[i];
      const double work = std::min(t.remaining, r.flops_per_sec * dt);
      t.remaining -= work;
      t.stats.flops += work;
      result_.total_flops += work;
      const double bytes = r.dram_bytes_per_sec * dt;
      t.stats.dram_bytes += bytes;
      interval_dram += bytes;
      if (llc_.registered(t.id)) {
        fills.push_back({t.id, r.residency_bytes_per_sec * dt,
                         r.streaming_bytes_per_sec * dt});
      }
    }
    llc_.advance(fills);
    // Observation accumulators for the counter-feedback extension.
    const bool llc_full =
        llc_.total_occupancy() >
        0.95 * static_cast<double>(config_.machine.llc_bytes);
    for (const ThreadId tid : running) {
      Thread& t = threads_[tid];
      if (t.point != Point::kBody || !llc_.registered(tid)) continue;
      const double occ = llc_.occupancy_bytes(tid);
      t.phase_occ_integral += occ * dt;
      t.phase_occ_peak = std::max(t.phase_occ_peak, occ);
      t.phase_contended = t.phase_contended || llc_full;
    }
    energy_.accumulate(dt, static_cast<int>(running.size()), interval_dram);
    now_ += dt;

    // Quantum expiry: preempt only when someone is waiting.
    for (Core& core : cores_) {
      if (core.running == kInvalidThread) continue;
      if (now_ + kTimeEpsilon < core.quantum_end) continue;
      Thread& t = threads_[core.running];
      const bool someone_waiting =
          config_.scheduler == SchedulerMode::kPerCoreQueues
              ? !core_ready_[static_cast<std::size_t>(t.core)].empty()
              : !ready_.empty();
      if (someone_waiting) {
        release_core(t);
        enqueue_ready(t);
      } else {
        core.quantum_end = now_ + config_.calib.quantum;
      }
    }
  }

  result_.makespan = now_;
  result_.package_joules = energy_.package_joules();
  result_.dram_joules = energy_.dram_joules();
  result_.dram_bytes = energy_.dram_bytes();
  result_.threads.reserve(threads_.size());
  for (const Thread& t : threads_) result_.threads.push_back(t.stats);
  return result_;
}

void Engine::wake(ThreadId thread) {
  RDA_CHECK(thread < threads_.size());
  Thread& t = threads_[thread];
  RDA_CHECK_MSG(t.state == ThreadState::kGateBlocked,
                "wake on thread " << thread << " that is not gate-blocked");
  if (config_.fault_injector != nullptr) {
    const fault::FaultSpec* fired =
        config_.fault_injector->consult(fault::Hook::kWake, t.id);
    if (fired != nullptr) {
      if (fired->kind == fault::FaultKind::kLostWake) {
        // The grant stands core-side but the notification is dropped; the
        // thread stays parked until recover_stall() notices the mismatch.
        ++result_.lost_wakes;
        return;
      }
      if (fired->kind == fault::FaultKind::kThreadDeath) {
        t.stats.gate_blocked_time += now_ - t.block_since;
        kill_thread(t);  // dies in the instant the grant lands
        return;
      }
      // kDelayedWake has no distinct meaning in virtual time (delivery is
      // instantaneous either way); deliver normally.
    }
  }
  trace(obs::EventKind::kWake, t);
  t.stats.gate_blocked_time += now_ - t.block_since;
  t.admitted = true;  // the gate admits before waking (paper Fig. 6)
  ++result_.gate_admissions;
  enqueue_ready(t);
}

void Engine::kill_thread(Thread& t) {
  ++result_.injected_deaths;
  if (gate_ != nullptr) gate_->on_thread_exit(t.id, now_);
  // Death fires at admission-lifecycle hooks, before phase_enter, so the
  // thread normally holds no LLC registration; drop one defensively so the
  // cache model cannot leak occupancy.
  if (llc_.registered(t.id)) llc_.phase_exit(t.id);
  finish(t);
}

bool Engine::recover_stall() {
  if (gate_ == nullptr) return false;
  bool changed = false;
  for (Thread& t : threads_) {
    if (t.state != ThreadState::kGateBlocked) continue;
    if (!gate_->pending_admitted(t.id)) continue;
    // The gate granted the period but the wake never arrived; resume the
    // thread inline rather than through wake(), which would consult the
    // fault injector a second time for the same grant.
    t.stats.gate_blocked_time += now_ - t.block_since;
    t.admitted = true;
    ++result_.gate_admissions;
    ++result_.recovered_wakes;
    enqueue_ready(t);
    changed = true;
  }
  if (!changed) changed = gate_->on_stall(now_);
  return changed;
}

}  // namespace rda::sim
