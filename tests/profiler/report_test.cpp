#include "profiler/report.hpp"

#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "util/units.hpp"

namespace rda::prof {
namespace {

using rda::util::MB;

TEST(RenderBeginCall, PaperShapedText) {
  EXPECT_EQ(render_begin_call(MB(6.3), ReuseLevel::kHigh),
            "pp_begin(RESOURCE_LLC, MB(6.30), REUSE_HIGH)");
  EXPECT_EQ(render_begin_call(MB(0.6), ReuseLevel::kLow),
            "pp_begin(RESOURCE_LLC, MB(0.60), REUSE_LOW)");
  EXPECT_EQ(render_begin_call(MB(2.0), ReuseLevel::kMedium),
            "pp_begin(RESOURCE_LLC, MB(2.00), REUSE_MED)");
}

// End-to-end over a synthetic two-phase trace: the pipeline should find two
// periods, map them to their loops, and synthesize insertable annotations.
TEST(Profiler, FullPipelineOnTwoPhaseTrace) {
  trace::LoopNest nest;
  nest.add_loop("phaseA", 0x1000, 0x2000);
  nest.add_loop("phaseB", 0x3000, 0x4000);

  const std::uint64_t region_a = MB(1);
  const std::uint64_t region_b = MB(4);
  const std::uint64_t lines_b = region_b / 64;
  const std::uint64_t window = lines_b * 24;

  auto phase = [&](std::uint64_t base, std::uint64_t size, std::uint64_t pc,
                   std::uint64_t seed) {
    trace::RegionSpec spec;
    spec.base = base;
    spec.size_bytes = size;
    spec.pattern = trace::Pattern::kHotCold;
    spec.hot_fraction = 0.625;
    spec.hot_probability = 0.97;
    spec.access_granularity = 8;
    spec.jump_pc = pc;
    spec.jump_period = 64;
    return std::make_unique<trace::RegionAccessSource>(spec, window * 5, seed);
  };

  std::vector<std::unique_ptr<trace::TraceSource>> parts;
  parts.push_back(phase(0x10000000, region_a, 0x1400, 1));
  parts.push_back(phase(0x20000000, region_b, 0x3400, 2));
  trace::ConcatSource source(std::move(parts));

  WindowConfig wcfg;
  wcfg.window_accesses = window;
  wcfg.hot_threshold = 6;
  DetectorConfig dcfg;
  dcfg.min_windows = 3;

  const ProfileReport report =
      Profiler(wcfg, dcfg).profile(source, nest);

  ASSERT_EQ(report.periods.size(), 2u);
  ASSERT_EQ(report.annotations.size(), 2u);
  EXPECT_EQ(report.annotations[0].loop_name, "phaseA");
  EXPECT_EQ(report.annotations[1].loop_name, "phaseB");
  // Measured working sets approximate the hot subsets.
  EXPECT_NEAR(static_cast<double>(report.periods[0].period.wss_bytes),
              0.625 * static_cast<double>(region_a),
              0.2 * static_cast<double>(region_a));
  EXPECT_NEAR(static_cast<double>(report.periods[1].period.wss_bytes),
              0.625 * static_cast<double>(region_b),
              0.2 * static_cast<double>(region_b));
  // Annotations carry paper-shaped begin calls.
  EXPECT_NE(report.annotations[0].begin_call.find("pp_begin(RESOURCE_LLC"),
            std::string::npos);
  EXPECT_EQ(report.annotations[0].end_call, "pp_end(pp_id)");
  // Human-readable rendering mentions both periods.
  const std::string text = report.to_string();
  EXPECT_NE(text.find("PP1"), std::string::npos);
  EXPECT_NE(text.find("PP2"), std::string::npos);
}

TEST(Profiler, EmptyTraceYieldsEmptyReport) {
  trace::LoopNest nest;
  trace::VectorSource source({});
  const ProfileReport report = Profiler({}, {}).profile(source, nest);
  EXPECT_TRUE(report.windows.empty());
  EXPECT_TRUE(report.periods.empty());
  EXPECT_TRUE(report.annotations.empty());
}

}  // namespace
}  // namespace rda::prof
