file(REMOVE_RECURSE
  "librda_exp.a"
)
