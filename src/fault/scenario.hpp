// Seeded fault scenarios + the invariant ledger tools/fault_matrix asserts.
//
// A scenario is one (workload, fault plan, substrate) cell: it builds the
// workload, arms a FaultInjector with a plan derived from the seed, runs it
// through the simulator or the native gate, and then audits the admission
// ledger — capacity conserved, no stranded waiters, registry drained, event
// stream consistent with the monitor counters. The grid is what the
// fault_matrix tool sweeps; each cell is independent, so exp::run_cells can
// execute them in parallel, and every field of ScenarioResult is derived
// from seeded state only (no wall-clock), keeping the CSV byte-deterministic
// across runs and --jobs values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"

namespace rda::fault {

enum class Substrate : std::uint8_t {
  kSim,     ///< discrete-event engine + core::RdaScheduler
  kNative,  ///< real threads through rt::AdmissionGate
};

std::string_view to_string(Substrate substrate);

/// One cell of the fault matrix.
struct ScenarioSpec {
  std::string name;  ///< workload shape, e.g. "contended", "infeasible"
  Substrate substrate = Substrate::kSim;
  std::uint64_t seed = 1;
  /// Faults drawn from FaultPlan::random(seed, fault_count, ...); a scripted
  /// scenario may override `plan` instead (wins when non-empty).
  std::size_t fault_count = 2;
  FaultPlan plan;
};

struct ScenarioResult {
  std::string name;
  std::string substrate;
  std::uint64_t seed = 0;
  bool ok = false;            ///< every ledger invariant held
  std::string failure;        ///< first violated invariant (empty when ok)
  std::uint64_t faults_fired = 0;
  std::uint64_t begins = 0;
  std::uint64_t ends = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t rejections = 0;
  std::uint64_t demand_clamps = 0;
  std::uint64_t force_admissions = 0;
  std::uint64_t lost_wakes = 0;
  std::uint64_t recovered_wakes = 0;
  /// Fired fault kinds in firing order, '+'-joined ("lost_wake+thread_death")
  /// — part of the byte-compared CSV, so it must be deterministic per seed.
  std::string fired_kinds;
};

/// Runs one cell. Never throws: an unexpected error is reported as a failed
/// ledger with the exception text in `failure`.
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// The standard grid: every workload shape × substrate × `seeds` seeds.
std::vector<ScenarioSpec> scenario_grid(std::uint64_t base_seed,
                                        std::size_t seeds);

/// CSV header + row formatting shared by tools/fault_matrix and the tier-1
/// smoke stage (no timestamps — byte-identical across runs by construction).
std::string csv_header();
std::string csv_row(const ScenarioResult& r);

}  // namespace rda::fault
