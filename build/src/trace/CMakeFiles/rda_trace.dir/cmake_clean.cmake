file(REMOVE_RECURSE
  "CMakeFiles/rda_trace.dir/generators.cpp.o"
  "CMakeFiles/rda_trace.dir/generators.cpp.o.d"
  "CMakeFiles/rda_trace.dir/loop_nest.cpp.o"
  "CMakeFiles/rda_trace.dir/loop_nest.cpp.o.d"
  "CMakeFiles/rda_trace.dir/trace_io.cpp.o"
  "CMakeFiles/rda_trace.dir/trace_io.cpp.o.d"
  "librda_trace.a"
  "librda_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
