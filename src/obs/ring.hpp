// Fixed-capacity event ring buffer.
//
// Bounded memory no matter how long the run: once full, the oldest events
// are overwritten and counted as dropped (exporters and the reconciliation
// check refuse to reason about a lossy capture). A spinlock guards the few
// stores of one record — admission events are rare relative to work, and
// the critical section is a handful of nanoseconds, so a futex-based mutex
// would cost more than it protects.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/event.hpp"

namespace rda::obs {

/// Tiny test-and-set spinlock (TSan-visible acquire/release ordering).
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// RAII guard for SpinLock (std::lock_guard works too; this avoids the
/// <mutex> include in a hot-path header).
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

class EventRing {
 public:
  /// Capacity is rounded up to a power of two (index masking).
  explicit EventRing(std::size_t capacity = 1 << 16);

  void push(const Event& event);

  /// Events still held, oldest first.
  std::vector<Event> snapshot() const;

  std::uint64_t total_recorded() const;
  /// Events overwritten by wrap-around; 0 means the capture is complete.
  std::uint64_t dropped() const;
  std::size_t capacity() const { return slots_.size(); }

 private:
  mutable SpinLock lock_;
  std::vector<Event> slots_;
  std::uint64_t next_ = 0;  ///< monotone write index (== total recorded)
};

}  // namespace rda::obs
