file(REMOVE_RECURSE
  "CMakeFiles/rda_core.dir/feedback.cpp.o"
  "CMakeFiles/rda_core.dir/feedback.cpp.o.d"
  "CMakeFiles/rda_core.dir/policy.cpp.o"
  "CMakeFiles/rda_core.dir/policy.cpp.o.d"
  "CMakeFiles/rda_core.dir/progress_monitor.cpp.o"
  "CMakeFiles/rda_core.dir/progress_monitor.cpp.o.d"
  "CMakeFiles/rda_core.dir/rda_scheduler.cpp.o"
  "CMakeFiles/rda_core.dir/rda_scheduler.cpp.o.d"
  "CMakeFiles/rda_core.dir/registry.cpp.o"
  "CMakeFiles/rda_core.dir/registry.cpp.o.d"
  "CMakeFiles/rda_core.dir/resource_monitor.cpp.o"
  "CMakeFiles/rda_core.dir/resource_monitor.cpp.o.d"
  "CMakeFiles/rda_core.dir/waitlist.cpp.o"
  "CMakeFiles/rda_core.dir/waitlist.cpp.o.d"
  "librda_core.a"
  "librda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
