#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rda::obs {

std::size_t WaitHistogram::bucket_of(double seconds) {
  if (!(seconds > 0.0)) return 0;  // negatives/NaN land in the floor bucket
  const double ns = seconds * 1e9;
  if (ns < 1.0) return 0;
  const auto whole = static_cast<std::uint64_t>(ns);
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(whole));
  return std::min(bucket, kBuckets - 1);
}

double WaitHistogram::bucket_floor(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(bucket) - 1) * 1e-9;
}

void WaitHistogram::add(double seconds) {
  seconds = std::max(seconds, 0.0);
  ++buckets_[bucket_of(seconds)];
  ++count_;
  sum_ += seconds;
  min_ = count_ == 1 ? seconds : std::min(min_, seconds);
  max_ = std::max(max_, seconds);
}

void WaitHistogram::merge(const WaitHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

double WaitHistogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double WaitHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (static_cast<double>(seen) > target) {
      // Geometric midpoint of [floor, 2*floor); clamp into the observed
      // range so the estimate never exceeds the exact extremes.
      const double lo = bucket_floor(b);
      const double mid = lo > 0.0 ? lo * std::sqrt(2.0) : 0.5e-9;
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

}  // namespace rda::obs
