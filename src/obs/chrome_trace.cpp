#include "obs/chrome_trace.hpp"

#include <ostream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace rda::obs {

namespace {

/// Escapes the few JSON-special characters a label could contain.
void write_escaped(std::ostream& os, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) os << c;
    }
  }
}

void write_event(std::ostream& os, const Event& e) {
  const char* ph = nullptr;
  switch (e.kind) {
    case EventKind::kBegin: ph = "B"; break;
    case EventKind::kEnd: ph = "E"; break;
    default: ph = "i"; break;
  }
  os << "{\"name\":\"";
  if (e.kind == EventKind::kBegin || e.kind == EventKind::kEnd) {
    // B/E names must match within a track for the viewer to pair them.
    write_escaped(os, e.label[0] != '\0' ? std::string_view(e.label)
                                         : std::string_view("period"));
  } else {
    write_escaped(os, to_string(e.kind));
  }
  os << "\",\"cat\":\"admission\",\"ph\":\"" << ph << "\",\"ts\":"
     << e.time * 1e6 << ",\"pid\":" << e.process << ",\"tid\":" << e.thread;
  if (e.kind != EventKind::kEnd) {
    // The spec forbids args on "E" (they belong to the matching "B").
    os << ",\"args\":{\"period\":" << e.period << ",\"resource\":\""
       << to_string(e.resource) << "\",\"demand\":" << e.demand << "}";
  }
  if (ph[0] == 'i') os << ",\"s\":\"t\"";
  os << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const Event> events) {
  os.precision(15);  // microsecond timestamps must not round away
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) os << ",\n";
    first = false;
    write_event(os, e);
  }
  os << "]}\n";
}

std::string chrome_trace_json(std::span<const Event> events) {
  std::ostringstream os;
  write_chrome_trace(os, events);
  return os.str();
}

void write_chrome_trace_file(const std::string& path,
                             std::span<const Event> events) {
  // Atomic replace: a crash mid-export must never leave a half-written JSON
  // where a previous complete trace (or nothing) used to be.
  util::write_file_atomic(path, chrome_trace_json(events));
}

}  // namespace rda::obs
