#include "service/frontend.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace rda::service {

namespace {

constexpr std::size_t idx(ResourceKind kind) {
  return static_cast<std::size_t>(kind);
}

}  // namespace

std::string_view to_string(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kLocalityAware: return "locality-aware";
    case RoutePolicy::kRandom: return "random";
    case RoutePolicy::kLeastLoaded: return "least-loaded";
  }
  return "?";
}

ServiceFrontEnd::ServiceFrontEnd(ServiceConfig config)
    : config_(config),
      rng_(config.seed),
      node_up_(static_cast<std::size_t>(config.nodes), true),
      outstanding_(static_cast<std::size_t>(config.nodes), 0.0),
      outstanding_vec_(static_cast<std::size_t>(config.nodes)),
      in_flight_count_(static_cast<std::size_t>(config.nodes), 0),
      parked_depth_(static_cast<std::size_t>(config.nodes), 0) {
  RDA_CHECK_MSG(config_.nodes >= 1, "service needs at least one node");
  RDA_CHECK_MSG(config_.drain_shards >= 0,
                "drain shard count cannot be negative");
  RDA_CHECK_MSG(config_.drain_interval_seconds > 0.0,
                "drain interval must be positive");
  RDA_CHECK_MSG(config_.oversubscription >= 1.0,
                "oversubscription factor must be >= 1");
  RDA_CHECK_MSG(config_.shed_keep_fraction >= 0.0 &&
                    config_.shed_keep_fraction < 1.0,
                "shed keep fraction must be in [0, 1)");
  num_shards_ = config_.drain_shards > 0 ? config_.drain_shards
                                         : config_.nodes;
  true_outstanding_.assign(static_cast<std::size_t>(config_.nodes), 0.0);
  if (config_.enforce) {
    core::TenantLedgerOptions opts = config_.ledger;
    if (opts.trace_sink == nullptr) opts.trace_sink = config_.trace_sink;
    ledger_ = std::make_unique<core::TenantLedger>(opts);
  }
  // Every shard queue gets the FULL global capacity: the overflow decision
  // is made against the global backlog in enqueue(), so a per-shard push
  // must never fail on its own — even if the tenant hash sends everything
  // to one shard.
  shards_.resize(static_cast<std::size_t>(num_shards_));
  for (DrainShard& shard : shards_) {
    shard.queue =
        std::make_unique<SubmissionQueue<Sub>>(config_.queue_capacity);
  }
  cores_.reserve(static_cast<std::size_t>(config_.nodes));
  for (int n = 0; n < config_.nodes; ++n) {
    core::AdmissionConfig cc;
    cc.llc_capacity_bytes = config_.node_llc_bytes;
    cc.bandwidth_capacity = config_.node_bandwidth;
    cc.energy_capacity_watts = config_.node_energy_watts;
    cc.policy = core::PolicyKind::kStrict;
    cc.trace_sink = config_.trace_sink;
    cores_.push_back(std::make_unique<core::AdmissionCore>(cc));
    cores_.back()->set_batch_waker(
        [this, n](const std::vector<core::ProgressMonitor::WakeGrant>&
                      grants) { on_wakes(n, grants); });
  }
}

std::uint64_t ServiceFrontEnd::flight_key(int node, core::PeriodId period) {
  RDA_CHECK(period < (std::uint64_t{1} << 56));
  return (static_cast<std::uint64_t>(node) << 56) | period;
}

int ServiceFrontEnd::tenant_home(std::uint64_t tenant) const {
  const auto it = tenant_home_.find(tenant);
  if (it == tenant_home_.end()) return -1;
  return node_up_[static_cast<std::size_t>(it->second)] ? it->second : -1;
}

std::size_t ServiceFrontEnd::inbox_backlog() const {
  std::size_t total = 0;
  for (const DrainShard& shard : shards_) total += shard.inbox.size();
  return total;
}

std::size_t ServiceFrontEnd::backlog() const {
  return queue_backlog_ + inbox_backlog() + parked_.size();
}

void ServiceFrontEnd::fold_checksum(std::uint64_t a, std::uint64_t b) {
  const auto mix = [this](std::uint64_t x) {
    checksum_ ^=
        x + 0x9e3779b97f4a7c15ull + (checksum_ << 6) + (checksum_ >> 2);
  };
  mix(a);
  mix(b);
}

void ServiceFrontEnd::trace_service(obs::EventKind kind, double at,
                                    std::uint64_t seq, std::uint64_t tenant,
                                    double demand) {
  if (config_.trace_sink == nullptr) return;
  obs::Event e;
  e.time = at;
  e.kind = kind;
  e.thread = static_cast<sim::ThreadId>(seq);
  e.process = static_cast<sim::ProcessId>(tenant);
  e.demand = demand;
  config_.trace_sink->record(e);
}

void ServiceFrontEnd::enqueue(const Sub& sub, double at) {
  if (queue_backlog_ >= config_.queue_capacity) {
    ++stats_.overflow_drops;  // never entered the ledger
    return;
  }
  Sub queued = sub;
  queued.enqueue_time = at;
  DrainShard& shard =
      shards_[static_cast<std::size_t>(shard_for_tenant(sub.tenant))];
  RDA_CHECK_MSG(shard.queue->push(queued),
                "shard queue full below the global capacity bound");
  ++queue_backlog_;
  ++shard.counters.enqueued;
  ++stats_.enqueued;
  trace_service(obs::EventKind::kEnqueue, at, sub.seq, sub.tenant,
                sub.demand);
}

void ServiceFrontEnd::mailbox_requeue(const Sub& sub, int from_node,
                                      double at) {
  const int to = shard_for_tenant(sub.tenant);
  shards_[static_cast<std::size_t>(to)].inbox.send(requeue_seq_++, sub);
  const int from = shard_of_node(from_node, num_shards_);
  ++shards_[static_cast<std::size_t>(from)].counters.mail_out;
  ++stats_.mailboxed;
  trace_service(obs::EventKind::kMailbox, at, sub.seq, sub.tenant,
                sub.demand);
}

int ServiceFrontEnd::least_loaded() const {
  int best = -1;
  for (int n = 0; n < config_.nodes; ++n) {
    if (!node_up_[static_cast<std::size_t>(n)]) continue;
    if (best < 0 || outstanding_[static_cast<std::size_t>(n)] <
                        outstanding_[static_cast<std::size_t>(best)]) {
      best = n;
    }
  }
  return best;
}

int ServiceFrontEnd::route(std::uint64_t tenant, double declared,
                           bool& warm) {
  warm = false;
  int chosen = -1;
  switch (config_.routing) {
    case RoutePolicy::kRandom: {
      std::vector<int> up;
      up.reserve(static_cast<std::size_t>(config_.nodes));
      for (int n = 0; n < config_.nodes; ++n) {
        if (node_up_[static_cast<std::size_t>(n)]) up.push_back(n);
      }
      RDA_CHECK_MSG(!up.empty(), "no node is up to route to");
      chosen = up[rng_.next_below(up.size())];
      break;
    }
    case RoutePolicy::kLeastLoaded:
      chosen = least_loaded();
      break;
    case RoutePolicy::kLocalityAware: {
      // Prefer the home node, where the tenant's footprint is warm:
      //   1. the home can admit now, or its waitlist is still shallow
      //      (a short warm wait beats a cold run) -> home;
      //   2. the home is deep but some node can admit NOW -> spill cold
      //      there (the home does not move), capping the latency a hot
      //      tenant pays for warmth;
      //   3. the whole fleet is saturated -> park at home after all:
      //      everywhere means waiting, so wait where the period will run
      //      warm. Cross-node imbalance is the steal pass's job,
      //      sustained overload the ladder's (the depth EWMA counts
      //      parked periods).
      const auto it = tenant_home_.find(tenant);
      const int home = (it != tenant_home_.end() &&
                        node_up_[static_cast<std::size_t>(it->second)])
                           ? it->second
                           : -1;
      if (home < 0) {
        chosen = least_loaded();
      } else {
        const auto h = static_cast<std::size_t>(home);
        if (outstanding_[h] + declared <= config_.node_llc_bytes ||
            parked_depth_[h] < config_.home_park_limit) {
          chosen = home;
          warm = true;
        } else {
          const int alt = least_loaded();
          if (alt >= 0 && alt != home &&
              outstanding_[static_cast<std::size_t>(alt)] + declared <=
                  config_.node_llc_bytes) {
            chosen = alt;
          } else {
            chosen = home;
            warm = true;
          }
        }
      }
      break;
    }
  }
  RDA_CHECK_MSG(chosen >= 0, "no node is up to route to");
  if (config_.routing == RoutePolicy::kLocalityAware) {
    // The home is sticky: a spill runs cold on another node while the
    // tenant's working set stays warm at home (re-homing on every spill
    // would shear the footprint exactly when the fleet saturates). Only
    // the first placement, a steal, or a node death moves the home.
    tenant_home_.emplace(tenant, chosen);
  } else {
    // Under kRandom / kLeastLoaded a placement that happens to land on the
    // tenant's previous node is warm too — warmth is discovered there, not
    // engineered — and the home follows the latest placement.
    const auto it = tenant_home_.find(tenant);
    warm = it != tenant_home_.end() && it->second == chosen;
    tenant_home_[tenant] = chosen;
  }
  return chosen;
}

double ServiceFrontEnd::node_capacity(ResourceKind kind) const {
  switch (kind) {
    case ResourceKind::kLLC: return config_.node_llc_bytes;
    case ResourceKind::kMemBandwidth: return config_.node_bandwidth;
    case ResourceKind::kEnergyBudget: return config_.node_energy_watts;
    default: return 0.0;
  }
}

ServiceFrontEnd::DemandVector ServiceFrontEnd::shape_demand(
    const Sub& sub, double& penalty, bool& clamped,
    bool& oversubscribed) const {
  clamped = false;
  oversubscribed = false;
  DemandVector shaped{};
  // Safety clamp per component: a demand larger than the node capacity can
  // never be admitted by the strict predicate; cap it like watchdog rung 1
  // would. Resources the nodes do not gate are dropped here, so an ungated
  // fleet ignores bw/watts declarations entirely.
  shaped[idx(ResourceKind::kLLC)] =
      std::min(sub.demand, config_.node_llc_bytes);
  if (config_.node_bandwidth > 0.0) {
    shaped[idx(ResourceKind::kMemBandwidth)] =
        std::min(sub.bw, config_.node_bandwidth);
  }
  if (config_.node_energy_watts > 0.0) {
    shaped[idx(ResourceKind::kEnergyBudget)] =
        std::min(sub.watts, config_.node_energy_watts);
  }
  if (rung_ >= 1) {
    // Clamp the DOMINANT resource: the component consuming the largest
    // fraction of its node capacity is the one keeping this submission out,
    // whichever resource that is. (LLC-only demands make this exactly the
    // old LLC clamp.)
    std::size_t dom = idx(ResourceKind::kLLC);
    double dom_frac =
        shaped[dom] / config_.node_llc_bytes;
    for (std::size_t k = 0; k < kNumResourceKinds; ++k) {
      const double cap = node_capacity(static_cast<ResourceKind>(k));
      if (cap <= 0.0) continue;
      const double frac = shaped[k] / cap;
      if (frac > dom_frac) {
        dom = k;
        dom_frac = frac;
      }
    }
    const double cap =
        config_.clamp_fraction * node_capacity(static_cast<ResourceKind>(dom));
    if (shaped[dom] > cap) {
      shaped[dom] = cap;
      clamped = true;
      penalty *= config_.clamp_penalty;
    }
  }
  if (rung_ >= 2) {
    // Thrash rung: under-declare EVERY component — the node is past the
    // point where precise accounting helps, trade fidelity for throughput.
    for (double& component : shaped) component /= config_.oversubscription;
    oversubscribed = true;
    penalty *= config_.thrash_penalty;
  }
  return shaped;
}

std::vector<core::ResourceDemand> ServiceFrontEnd::to_demands(
    const DemandVector& declared) const {
  std::vector<core::ResourceDemand> demands;
  demands.push_back(
      {ResourceKind::kLLC, declared[idx(ResourceKind::kLLC)]});
  if (config_.node_bandwidth > 0.0 &&
      declared[idx(ResourceKind::kMemBandwidth)] > 0.0) {
    demands.push_back({ResourceKind::kMemBandwidth,
                       declared[idx(ResourceKind::kMemBandwidth)]});
  }
  if (config_.node_energy_watts > 0.0 &&
      declared[idx(ResourceKind::kEnergyBudget)] > 0.0) {
    demands.push_back({ResourceKind::kEnergyBudget,
                       declared[idx(ResourceKind::kEnergyBudget)]});
  }
  return demands;
}

void ServiceFrontEnd::charge_outstanding(int node,
                                         const DemandVector& declared,
                                         double sign) {
  const auto n = static_cast<std::size_t>(node);
  outstanding_[n] += sign * declared[idx(ResourceKind::kLLC)];
  DemandVector& vec = outstanding_vec_[n];
  for (std::size_t k = 0; k < kNumResourceKinds; ++k) {
    vec[k] += sign * declared[k];
    if (sign > 0.0) {
      peak_outstanding_[k] = std::max(peak_outstanding_[k], vec[k]);
    }
  }
}

double ServiceFrontEnd::true_occupancy(const Sub& sub) const {
  const double touched = sub.true_demand > 0.0 ? sub.true_demand : sub.demand;
  // A working set cannot occupy more LLC than the node has.
  return std::min(touched, config_.node_llc_bytes);
}

void ServiceFrontEnd::apply_audits() {
  if (ledger_ == nullptr) return;
  std::vector<core::AuditRecord> merged;
  for (DrainShard& shard : shards_) {
    merged.insert(merged.end(), shard.audit_slice.begin(),
                  shard.audit_slice.end());
    shard.audit_slice.clear();
  }
  if (merged.empty()) return;
  // apply() replays the records in global audit_seq order, so the ledger
  // ends up byte-identical no matter how the slices partitioned them.
  ledger_->apply(merged);
}

bool ServiceFrontEnd::enforce_ledger(const Sub& sub,
                                     DemandVector& declared) {
  // Rung 4: hard quota on open submissions. Shedding (not parking) the
  // excess keeps the drain loop live — a parked-forever quota victim would
  // wedge quiescence — and the ledger invariants intact (the shed is
  // counted like any ladder shed).
  std::uint64_t& open = tenant_open_[sub.tenant];
  if (!ledger_->within_quota(sub.tenant, open)) {
    ++stats_.quota_denied;
    return false;
  }

  // Rung 1+: haircut — admission charges the audited truth, not the claim.
  double& llc = declared[idx(ResourceKind::kLLC)];
  const double correction = ledger_->demand_correction(sub.tenant);
  if (correction != 1.0) {
    llc = std::min(llc * correction, config_.node_llc_bytes);
    ++stats_.haircuts;
  }

  // Credit-priced bursts: demand beyond the long-term fair share (an equal
  // split of fleet LLC across the tenants seen so far) must be funded by
  // banked credits, surcharge-priced at rung >= 2. An unfundable burst is
  // clamped to the fair share, never shed — fair share is guaranteed,
  // bursts are a privilege.
  const double fair =
      static_cast<double>(config_.nodes) * config_.node_llc_bytes /
      static_cast<double>(std::max<std::size_t>(tenant_rows_.size(), 1));
  if (llc > fair) {
    const double unit = ledger_->options().credit_unit_bytes;
    const auto units_over =
        static_cast<std::uint64_t>(std::ceil((llc - fair) / unit));
    const auto want = static_cast<std::uint64_t>(std::ceil(
        static_cast<double>(units_over) * ledger_->credit_price(sub.tenant)));
    if (ledger_->credits_balance(sub.tenant) >= want) {
      const std::uint64_t paid = ledger_->spend(sub.tenant, want, now_);
      RDA_CHECK_MSG(paid == want, "funded burst paid short");
    } else {
      llc = fair;
      ++stats_.burst_clamps;
    }
  }

  ++open;  // the submission is now headed for admit_batch (or a waitlist)
  return true;
}

void ServiceFrontEnd::record_admission(const Sub& sub, int node,
                                       core::PeriodId period,
                                       const DemandVector& declared,
                                       double penalty, bool warm,
                                       bool from_wake) {
  const double latency = std::max(0.0, now_ - sub.enqueue_time);
  latency_.add(latency);
  const double alpha = config_.ladder.ewma_alpha;
  latency_ewma_ = alpha * latency + (1.0 - alpha) * latency_ewma_;
  ++stats_.admitted;
  if (from_wake) ++stats_.woken;
  TenantSummary& row = tenant_rows_[sub.tenant];
  row.tenant = sub.tenant;
  ++row.admissions;
  row.latency_sum += latency;

  if (config_.model_true_occupancy) {
    // The thrash model: the node's PHYSICAL load is the sum of what its
    // periods actually touch. A period admitted while that exceeds the LLC
    // runs slower — which is exactly the damage an under-declarer does,
    // with or without enforcement.
    double& true_load = true_outstanding_[static_cast<std::size_t>(node)];
    true_load += true_occupancy(sub);
    if (true_load > config_.node_llc_bytes) {
      penalty *= config_.thrash_penalty;
    }
  }

  const std::uint64_t key = flight_key(node, period);
  Flight flight;
  flight.sub = sub;
  flight.node = node;
  flight.thread = static_cast<sim::ThreadId>(sub.seq);
  flight.declared = declared;
  RDA_CHECK(in_flight_.emplace(key, flight).second);
  charge_outstanding(node, declared, +1.0);
  ++in_flight_count_[static_cast<std::size_t>(node)];

  const double factor =
      penalty * (warm ? config_.warm_service_factor : 1.0);
  const double done_at = now_ + sub.service * factor;
  completions_.push(Completion{done_at, key});
  fold_checksum(sub.seq, (static_cast<std::uint64_t>(node) << 32) ^
                             std::bit_cast<std::uint64_t>(done_at));
}

void ServiceFrontEnd::on_wakes(
    int node, const std::vector<core::ProgressMonitor::WakeGrant>& grants) {
  for (const core::ProgressMonitor::WakeGrant& grant : grants) {
    const std::uint64_t key = flight_key(node, grant.period);
    const auto it = parked_.find(key);
    RDA_CHECK_MSG(it != parked_.end(),
                  "wake for a period the service never parked");
    const Parked parked = it->second;
    parked_.erase(it);
    --parked_depth_[static_cast<std::size_t>(node)];
    record_admission(parked.sub, node, grant.period, parked.declared,
                     parked.penalty, parked.warm, /*from_wake=*/true);
  }
}

void ServiceFrontEnd::release_due(double now) {
  // Pop everything due, bucketing per node so each node pays ONE
  // release_batch (one slow-lane pass + one wake delivery) per drain.
  std::vector<std::vector<core::PeriodId>> due(
      static_cast<std::size_t>(config_.nodes));
  std::vector<std::vector<double>> done_times(
      static_cast<std::size_t>(config_.nodes));
  while (!completions_.empty() && completions_.top().time <= now) {
    const Completion top = completions_.top();
    completions_.pop();
    const auto it = in_flight_.find(top.key);
    if (it == in_flight_.end()) continue;  // reaped by a node death
    const int node = it->second.node;
    due[static_cast<std::size_t>(node)].push_back(
        top.key & ((std::uint64_t{1} << 56) - 1));
    done_times[static_cast<std::size_t>(node)].push_back(top.time);
  }
  for (int n = 0; n < config_.nodes; ++n) {
    auto& ids = due[static_cast<std::size_t>(n)];
    if (ids.empty()) continue;
    // Settle the outstanding mirror BEFORE release_batch: the core frees the
    // completed periods' budget and synchronously wakes parked work in that
    // call, and the wake path charges the woken flights' demands. Were the
    // completed flights still on the books at that moment, the mirror would
    // transiently double-count (completed + woken) and peak_outstanding
    // would read ~2x a bound the core never actually exceeded.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const std::uint64_t key = flight_key(n, ids[i]);
      const auto it = in_flight_.find(key);
      RDA_CHECK(it != in_flight_.end());
      const Flight& flight = it->second;
      const double done = done_times[static_cast<std::size_t>(n)][i];
      ++stats_.completed;
      completed_work_ += flight.sub.service;
      last_completion_ = std::max(last_completion_, done);
      TenantSummary& row = tenant_rows_[flight.sub.tenant];
      row.tenant = flight.sub.tenant;
      ++row.completed;
      row.work += flight.sub.service;
      if (config_.model_true_occupancy) {
        true_outstanding_[static_cast<std::size_t>(n)] -=
            true_occupancy(flight.sub);
      }
      if (ledger_ != nullptr) {
        --tenant_open_[flight.sub.tenant];
        // Capture the audit into this node's shard slice, stamped with the
        // global completion-settle order (which is already K-invariant);
        // apply_audits() merges the slices back into that order.
        core::AuditRecord audit;
        audit.audit_seq = audit_seq_++;
        audit.tenant = flight.sub.tenant;
        audit.declared = flight.sub.demand;
        audit.observed = config_.model_true_occupancy
                             ? true_occupancy(flight.sub)
                             : flight.sub.demand;
        // Under global overload the fleet itself limits what a period can
        // occupy; a below-declaration peak is then a lower bound, not a lie.
        audit.contended = rung_ >= 2;
        audit.time = done;
        shards_[static_cast<std::size_t>(shard_of_node(n, num_shards_))]
            .audit_slice.push_back(audit);
      }
      charge_outstanding(n, flight.declared, -1.0);
      --in_flight_count_[static_cast<std::size_t>(n)];
      fold_checksum(flight.sub.seq, std::bit_cast<std::uint64_t>(done));
      in_flight_.erase(it);
    }
    cores_[static_cast<std::size_t>(n)]->release_batch(ids, now);
  }
}

void ServiceFrontEnd::apply_fault(double now) {
  const NodeFault& fault = config_.fault;
  if (fault.node < 0 || fault.node >= config_.nodes) return;
  const auto n = static_cast<std::size_t>(fault.node);

  if (!fault_done_ && !fault_down_ && now >= fault.fail_at_seconds) {
    fault_down_ = true;
    node_up_[n] = false;
    if (fault.recover_at_seconds <= fault.fail_at_seconds) fault_done_ = true;
    trace_service(obs::EventKind::kNodeDown, now, 0, 0, outstanding_[n]);

    // Cancel every period parked on the dead node and re-queue its
    // submission (deterministic order: ascending period id).
    std::vector<std::uint64_t> parked_keys;
    for (const auto& [key, parked] : parked_) {
      if (parked.node == fault.node) parked_keys.push_back(key);
    }
    std::sort(parked_keys.begin(), parked_keys.end());
    for (const std::uint64_t key : parked_keys) {
      // An earlier withdrawal can unblock the dying node's waitlist and
      // wake (admit) a later parked period; it lands in in_flight_ and the
      // reap loop below re-queues it instead.
      const auto parked_it = parked_.find(key);
      if (parked_it == parked_.end()) continue;
      const Parked parked = parked_it->second;
      const core::PeriodId period = key & ((std::uint64_t{1} << 56) - 1);
      const core::WithdrawResult result =
          cores_[n]->try_withdraw(period, now);
      RDA_CHECK_MSG(result == core::WithdrawResult::kCancelled,
                    "parked period raced its own node death");
      parked_.erase(key);
      --parked_depth_[n];
      if (ledger_ != nullptr) --tenant_open_[parked.sub.tenant];
      ++stats_.reroutes;
      Sub sub = parked.sub;
      sub.enqueue_time = now;
      ++stats_.enqueued;
      trace_service(obs::EventKind::kEnqueue, now, sub.seq, sub.tenant,
                    sub.demand);
      mailbox_requeue(sub, fault.node, now);
    }

    // Reap every admitted period the node was carrying and re-queue it;
    // the stale completions are skipped when their time comes.
    std::vector<std::uint64_t> flight_keys;
    for (const auto& [key, flight] : in_flight_) {
      if (flight.node == fault.node) flight_keys.push_back(key);
    }
    std::sort(flight_keys.begin(), flight_keys.end());
    for (const std::uint64_t key : flight_keys) {
      const Flight flight = in_flight_.at(key);
      const core::ProgressMonitor::ReapOutcome outcome =
          cores_[n]->reap(flight.thread, now);
      RDA_CHECK_MSG(outcome.reaped && outcome.was_admitted,
                    "in-flight period was not admitted at reap time");
      in_flight_.erase(key);
      charge_outstanding(fault.node, flight.declared, -1.0);
      if (config_.model_true_occupancy) {
        true_outstanding_[n] -= true_occupancy(flight.sub);
      }
      if (ledger_ != nullptr) --tenant_open_[flight.sub.tenant];
      --in_flight_count_[n];
      ++stats_.reroutes;
      Sub sub = flight.sub;
      sub.enqueue_time = now;
      ++stats_.enqueued;
      trace_service(obs::EventKind::kEnqueue, now, sub.seq, sub.tenant,
                    sub.demand);
      mailbox_requeue(sub, fault.node, now);
    }

    // The dead node is nobody's home anymore.
    for (auto it = tenant_home_.begin(); it != tenant_home_.end();) {
      it = it->second == fault.node ? tenant_home_.erase(it) : std::next(it);
    }
    return;
  }

  if (fault_down_ && !fault_done_ && now >= fault.recover_at_seconds) {
    fault_down_ = false;
    fault_done_ = true;
    node_up_[n] = true;
    trace_service(obs::EventKind::kNodeUp, now, 0, 0, 0.0);
  }
}

void ServiceFrontEnd::steal_pass(double now) {
  if (config_.routing != RoutePolicy::kLocalityAware) return;

  // Aggregate the parked population per (node, tenant). The map is ordered
  // and the per-batch key lists are sorted, so the pass is deterministic
  // regardless of hash-map iteration order.
  std::map<std::pair<int, std::uint64_t>, std::vector<std::uint64_t>>
      batches;
  std::vector<std::size_t> parked_count(
      static_cast<std::size_t>(config_.nodes), 0);
  for (const auto& [key, parked] : parked_) {
    batches[{parked.node, parked.sub.tenant}].push_back(key);
    ++parked_count[static_cast<std::size_t>(parked.node)];
  }
  if (batches.empty()) return;

  int thief = -1;
  for (int n = 0; n < config_.nodes; ++n) {
    const auto idx = static_cast<std::size_t>(n);
    if (node_up_[idx] && in_flight_count_[idx] == 0 &&
        parked_count[idx] == 0) {
      thief = n;
      break;
    }
  }
  if (thief < 0) return;

  // Donor: the node with the deepest parked backlog, but only if it holds
  // MORE than one tenant's batch — stealing a lone tenant's batch would
  // just shear its working set to a cold LLC for nothing.
  int donor = -1;
  std::size_t donor_depth = 0;
  for (int n = 0; n < config_.nodes; ++n) {
    const auto idx = static_cast<std::size_t>(n);
    if (n == thief || parked_count[idx] == 0) continue;
    std::size_t tenants_here = 0;
    for (const auto& [node_tenant, keys] : batches) {
      if (node_tenant.first == n) ++tenants_here;
    }
    if (tenants_here >= 2 && parked_count[idx] > donor_depth) {
      donor = n;
      donor_depth = parked_count[idx];
    }
  }
  if (donor < 0) return;

  // Victim: the donor's smallest whole batch (ties to the lowest tenant
  // id) — cheapest working set to rebuild on the thief.
  std::uint64_t victim = 0;
  std::size_t victim_size = 0;
  for (const auto& [node_tenant, keys] : batches) {
    if (node_tenant.first != donor) continue;
    if (victim == 0 || keys.size() < victim_size) {
      victim = node_tenant.second;
      victim_size = keys.size();
    }
  }
  RDA_CHECK(victim != 0);

  auto keys = batches.at({donor, victim});
  std::sort(keys.begin(), keys.end());
  std::uint64_t moved = 0;
  for (const std::uint64_t key : keys) {
    // Withdrawing an earlier victim can unblock the donor's waitlist and
    // wake (admit) a later one mid-batch; a woken period stays home.
    const auto it = parked_.find(key);
    if (it == parked_.end()) continue;
    const Parked parked = it->second;
    const core::PeriodId period = key & ((std::uint64_t{1} << 56) - 1);
    const core::WithdrawResult result =
        cores_[static_cast<std::size_t>(donor)]->try_withdraw(period, now);
    RDA_CHECK_MSG(result == core::WithdrawResult::kCancelled,
                  "stolen period raced its own wake");
    parked_.erase(key);
    --parked_depth_[static_cast<std::size_t>(donor)];
    if (ledger_ != nullptr) --tenant_open_[parked.sub.tenant];
    // Stolen work keeps its original enqueue time: its admission latency
    // reflects the whole wait, not a reset clock.
    ++moved;
    ++stats_.enqueued;
    trace_service(obs::EventKind::kEnqueue, now, parked.sub.seq,
                  parked.sub.tenant, parked.sub.demand);
    mailbox_requeue(parked.sub, donor, now);
  }
  if (moved == 0) return;
  tenant_home_[victim] = thief;
  ++stats_.steals;
  stats_.stolen += moved;
  trace_service(obs::EventKind::kSteal, now, 0, victim,
                static_cast<double>(moved));
}

std::vector<ServiceFrontEnd::Sub> ServiceFrontEnd::merge_drain_batch() {
  // Requeues first, in ascending seniority: displaced work keeps its
  // place. Each mailbox sorts its own entries; the global sort restores
  // decision order across shards (a steal and a reroute landing in the
  // same round replay in the order they were decided).
  std::vector<Mailbox<Sub>::Entry> requeues;
  for (DrainShard& shard : shards_) {
    shard.counters.mail_in += shard.inbox.drain(requeues);
  }
  std::sort(requeues.begin(), requeues.end(),
            [](const Mailbox<Sub>::Entry& a, const Mailbox<Sub>::Entry& b) {
              return a.seniority < b.seniority;
            });

  std::vector<Sub> popped;
  popped.reserve(requeues.size());
  for (Mailbox<Sub>::Entry& entry : requeues) {
    const int shard = shard_for_tenant(entry.value.tenant);
    ++shards_[static_cast<std::size_t>(shard)].counters.drained;
    popped.push_back(std::move(entry.value));
  }

  // Top up each shard's staging runway to the full batch cap. The merge
  // below then yields a true global-FIFO prefix: a shard that contributed
  // fewer than cap entries has an EMPTY queue, so no submission it holds
  // could have outranked one the merge took.
  for (DrainShard& shard : shards_) {
    if (shard.staged.size() < config_.drain_batch_max) {
      std::vector<Sub> refill;
      shard.queue->pop_batch(refill,
                             config_.drain_batch_max - shard.staged.size());
      for (Sub& sub : refill) shard.staged.push_back(std::move(sub));
    }
    shard.counters.peak_staged = std::max(
        shard.counters.peak_staged,
        static_cast<std::uint64_t>(shard.staged.size()));
  }

  // K-way min-seq merge of the runway heads. Fresh arrivals enter their
  // shard queue in ascending global seq, so each runway is an ascending
  // subsequence and picking the smallest head reconstructs the order a
  // single queue would have popped — byte-identical for any K.
  std::size_t room = popped.size() < config_.drain_batch_max
                         ? config_.drain_batch_max - popped.size()
                         : 0;
  while (room > 0) {
    DrainShard* best = nullptr;
    for (DrainShard& shard : shards_) {
      if (shard.staged.empty()) continue;
      if (best == nullptr ||
          shard.staged.front().seq < best->staged.front().seq) {
        best = &shard;
      }
    }
    if (best == nullptr) break;
    popped.push_back(std::move(best->staged.front()));
    best->staged.pop_front();
    ++best->counters.drained;
    --queue_backlog_;
    --room;
  }
  return popped;
}

void ServiceFrontEnd::drain_pass(double now) {
  // Fold last release's audits into the ledger BEFORE any enforcement
  // decision this pass — enforcement always acts on settled evidence.
  apply_audits();

  std::vector<Sub> popped = merge_drain_batch();
  if (popped.empty()) return;

  ++stats_.drains;
  stats_.drained += popped.size();
  trace_service(obs::EventKind::kBatchDrain, now, stats_.drains, 0,
                static_cast<double>(popped.size()));

  if (rung_ >= 3) {
    // SLO-aware shedding: keep the floor(fraction × batch) submissions
    // whose declared work (demand × service) is largest and shed the
    // cheap tail first — the kept few carry most of the batch's work, so
    // goodput degrades less than dropping everything. fraction 0 is
    // exactly the old drop-all rung.
    const std::size_t keep = static_cast<std::size_t>(
        config_.shed_keep_fraction * static_cast<double>(popped.size()));
    std::vector<char> kept(popped.size(), 0);
    if (keep > 0) {
      std::vector<std::size_t> order(popped.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const double ca = popped[a].demand * popped[a].service;
                  const double cb = popped[b].demand * popped[b].service;
                  if (ca != cb) return ca > cb;
                  return popped[a].seq < popped[b].seq;
                });
      for (std::size_t i = 0; i < keep; ++i) kept[order[i]] = 1;
    }
    std::vector<Sub> survivors;
    survivors.reserve(keep);
    for (std::size_t i = 0; i < popped.size(); ++i) {
      if (kept[i] != 0) {
        survivors.push_back(popped[i]);
        continue;
      }
      ++stats_.shed;
      TenantSummary& row = tenant_rows_[popped[i].tenant];
      row.tenant = popped[i].tenant;
      ++row.shed;
      trace_service(obs::EventKind::kShed, now, popped[i].seq,
                    popped[i].tenant, popped[i].demand);
    }
    if (survivors.empty()) return;
    popped.swap(survivors);  // survivors proceed to admission, in order
  }

  if (ledger_ != nullptr) {
    // Rung 3: deprioritized tenants' submissions go to the BACK of the
    // batch (stable, so order within each class is preserved) — honest
    // tenants' work is routed and admitted first, and when capacity runs
    // out mid-batch it is the deprioritized tail that parks.
    const auto first_depri = std::stable_partition(
        popped.begin(), popped.end(), [&](const Sub& sub) {
          return !ledger_->deprioritized(sub.tenant);
        });
    stats_.deprioritized +=
        static_cast<std::uint64_t>(std::distance(first_depri, popped.end()));
  }

  // Route every submission, bucketing requests per node so each node pays
  // ONE admit_batch for its whole share of the drain.
  struct NodeBatch {
    std::vector<core::AdmitRequest> requests;
    std::vector<const Sub*> subs;
    std::vector<DemandVector> declared;
    std::vector<double> penalties;
    std::vector<bool> warm;
  };
  std::vector<NodeBatch> batches(static_cast<std::size_t>(config_.nodes));
  for (const Sub& sub : popped) {
    double penalty = 1.0;
    bool clamped = false;
    bool oversubscribed = false;
    DemandVector declared =
        shape_demand(sub, penalty, clamped, oversubscribed);
    if (clamped) ++stats_.clamped;
    if (oversubscribed) ++stats_.oversubscribed;
    if (ledger_ != nullptr && !enforce_ledger(sub, declared)) {
      // Rung-4 quota shed: counted exactly like a ladder shed so the
      // drained == begins + sheds ledger stays balanced.
      ++stats_.shed;
      TenantSummary& row = tenant_rows_[sub.tenant];
      row.tenant = sub.tenant;
      ++row.shed;
      trace_service(obs::EventKind::kShed, now, sub.seq, sub.tenant,
                    sub.demand);
      continue;
    }
    bool warm = false;
    const int node =
        route(sub.tenant, declared[idx(ResourceKind::kLLC)], warm);
    auto& batch = batches[static_cast<std::size_t>(node)];
    core::AdmitRequest request;
    request.thread = static_cast<sim::ThreadId>(sub.seq);
    request.process = static_cast<sim::ProcessId>(sub.tenant);
    request.demands = to_demands(declared);
    batch.requests.push_back(std::move(request));
    batch.subs.push_back(&sub);
    batch.declared.push_back(declared);
    batch.penalties.push_back(penalty);
    batch.warm.push_back(warm);
  }

  for (int n = 0; n < config_.nodes; ++n) {
    auto& batch = batches[static_cast<std::size_t>(n)];
    if (batch.requests.empty()) continue;
    const std::vector<core::AdmitTicket> tickets =
        cores_[static_cast<std::size_t>(n)]->admit_batch(
            std::move(batch.requests), now);
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const core::AdmitTicket& ticket = tickets[i];
      if (ticket.admitted) {
        record_admission(*batch.subs[i], n, ticket.id, batch.declared[i],
                         batch.penalties[i], batch.warm[i],
                         /*from_wake=*/false);
      } else {
        Parked parked;
        parked.sub = *batch.subs[i];
        parked.node = n;
        parked.declared = batch.declared[i];
        parked.penalty = batch.penalties[i];
        parked.warm = batch.warm[i];
        RDA_CHECK(
            parked_.emplace(flight_key(n, ticket.id), parked).second);
        ++parked_depth_[static_cast<std::size_t>(n)];
      }
    }
  }
}

void ServiceFrontEnd::update_ladder() {
  const double alpha = config_.ladder.ewma_alpha;
  const auto depth = static_cast<double>(backlog());
  depth_ewma_ = alpha * depth + (1.0 - alpha) * depth_ewma_;
  // Per-shard backlog EWMAs are observability only: the ladder keys off
  // the GLOBAL depth above, so escalation decisions are identical for any
  // shard count (a per-shard trigger would make admission depend on K).
  for (DrainShard& shard : shards_) {
    const auto local = static_cast<double>(
        shard.queue->size() + shard.staged.size() + shard.inbox.size());
    shard.counters.backlog_ewma =
        alpha * local + (1.0 - alpha) * shard.counters.backlog_ewma;
  }
  // With nothing waiting, the current admission latency is effectively
  // zero; decay the EWMA so a drained (or fully shedding) fleet can walk
  // back down the ladder instead of pinning on the last hot sample.
  if (depth == 0.0) latency_ewma_ *= 1.0 - alpha;
  stats_.max_backlog =
      std::max(stats_.max_backlog, static_cast<std::uint64_t>(depth));

  const bool hot = depth_ewma_ > config_.ladder.queue_high ||
                   latency_ewma_ > config_.ladder.latency_high_seconds;
  const bool cool = depth_ewma_ < 0.5 * config_.ladder.queue_high &&
                    latency_ewma_ < 0.5 * config_.ladder.latency_high_seconds;
  if (hot && rung_ < 3) {
    ++rung_;
    ++stats_.escalations;
  } else if (cool && rung_ > 0) {
    --rung_;
    ++stats_.deescalations;
  }
}

ServiceReport ServiceFrontEnd::run(ArrivalSource& arrivals,
                                   std::uint64_t count) {
  RDA_CHECK_MSG(!ran_, "ServiceFrontEnd::run is one-shot");
  ran_ = true;

  Arrival pending{};
  std::uint64_t left = count;
  bool have = false;
  if (left > 0) {
    pending = arrivals.next();
    have = true;
  }

  while (true) {
    const double tick_end = now_ + config_.drain_interval_seconds;
    while (have && pending.time <= tick_end) {
      Sub sub;
      sub.seq = pending.seq;
      sub.tenant = pending.tenant;
      sub.demand = pending.demand_bytes;
      sub.bw = pending.bw_bytes_per_sec;
      sub.watts = pending.watts;
      sub.service = pending.service_seconds;
      sub.true_demand = pending.true_demand_bytes;
      TenantSummary& row = tenant_rows_[sub.tenant];
      row.tenant = sub.tenant;
      ++row.arrivals;
      enqueue(sub, pending.time);
      --left;
      if (left > 0) {
        pending = arrivals.next();
      } else {
        have = false;
      }
    }
    now_ = tick_end;

    apply_fault(now_);
    release_due(now_);
    steal_pass(now_);
    drain_pass(now_);
    update_ladder();

    // Keep ticking after the last completion until the ladder settles:
    // idle ticks decay both EWMAs geometrically, so this terminates.
    if (!have && queue_backlog_ == 0 && inbox_backlog() == 0 &&
        parked_.empty() && in_flight_.empty() && completions_.empty() &&
        rung_ == 0) {
      break;
    }
  }

  // The loop breaks right after drain_pass, whose apply_audits() already
  // folded this tick's completions in; this is a belt-and-braces flush so
  // no captured audit can outlive the run.
  apply_audits();

  ServiceReport report;
  stats_.final_rung = rung_;
  stats_.still_queued = queue_backlog_ + inbox_backlog();
  if (ledger_ != nullptr) {
    stats_.audits = ledger_->audits();
    stats_.penalties = ledger_->penalties();
    stats_.credits_granted = ledger_->total_granted();
    stats_.credits_spent = ledger_->total_spent();
  }
  report.stats = stats_;
  report.drain_shards = num_shards_;
  report.shards.reserve(shards_.size());
  for (const DrainShard& shard : shards_) {
    report.shards.push_back(shard.counters);
  }
  report.admission_latency = latency_;
  report.elapsed_seconds = last_completion_ > 0.0 ? last_completion_ : now_;
  if (report.elapsed_seconds > 0.0) {
    report.goodput_per_second =
        static_cast<double>(stats_.completed) / report.elapsed_seconds;
    report.work_per_second = completed_work_ / report.elapsed_seconds;
  }
  for (std::size_t k = 0; k < kNumResourceKinds; ++k) {
    report.node_capacity[k] = node_capacity(static_cast<ResourceKind>(k));
  }
  report.peak_outstanding = peak_outstanding_;
  for (const auto& core : cores_) report.admission += core->stats();
  report.checksum = checksum_;
  report.tenants.reserve(tenant_rows_.size());
  for (const auto& [tenant, row] : tenant_rows_) {
    TenantSummary out = row;
    if (ledger_ != nullptr) {
      out.rung = ledger_->rung(tenant);
      out.honesty = ledger_->honesty(tenant);
      out.credits = ledger_->credits_balance(tenant);
    }
    report.tenants.push_back(out);
  }
  if (ledger_ != nullptr) {
    report.ledger_fingerprint = ledger_->fingerprint();
    report.credits_conserved = ledger_->credits_conserved();
  }
  return report;
}

}  // namespace rda::service
