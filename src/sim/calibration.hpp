// Calibration constants for the performance and energy models.
//
// Every constant that turns the machine description into Joules and GFLOPS
// lives here, with its justification. Absolute values are engineering
// estimates for the paper's Xeon E5-2420 class of machine; the reproduction
// claims *shapes* (who wins, where the crossovers are), and the calibration
// test (tests/sim/calibration_test.cpp) pins those shapes:
//   * a high-reuse phase whose working set is fully evicted runs ~2-3x
//     slower than when resident (the paper's max observed speedup is 1.88x),
//   * a low-reuse (streaming) phase is barely sensitive to residency,
//   * oversubscribed DRAM bandwidth caps aggregate throughput (Fig. 13's
//     plateau from 6 to 12 instances at the largest input).
#pragma once

#include "common/types.hpp"
#include "util/units.hpp"

namespace rda::sim {

struct Calibration {
  // --- performance ----------------------------------------------------------

  /// Attained flops/s of one core on cache-resident dense kernels. The
  /// paper's Fig. 13 shows ~33 GFLOPS aggregate for 6 fitting instances,
  /// i.e. ~5.5 GFLOPS per core on SSE/AVX double-precision code.
  double core_flops = 5.5e9;

  /// Effective stall per LLC miss, seconds. Raw DDR3 latency is ~60-80 ns;
  /// out-of-order overlap and prefetching hide most of it on dense kernels,
  /// leaving ~8 ns of exposed stall per missing line.
  double miss_stall = util::ns(8);

  /// Cache line size — the granularity of LLC fills and DRAM transfers.
  double line_bytes = 64.0;

  /// Misses per flop that happen regardless of LLC residency (compulsory /
  /// streaming traffic). daxpy moves ~12 bytes per flop (~0.19 lines);
  /// blocked dgemm (n^3 flops over n^2 data) moves almost nothing once
  /// resident.
  double stream_misses_per_flop(ReuseLevel r) const {
    switch (r) {
      case ReuseLevel::kLow: return 0.19;
      case ReuseLevel::kMedium: return 0.030;
      case ReuseLevel::kHigh: return 0.001;
    }
    return 0.0;
  }

  /// Additional misses per flop when the working set is NOT resident,
  /// scaled by (1 - resident_fraction). Sized so a fully-evicted high-reuse
  /// phase runs ~3.5x slower than a resident one — a cache-blocked dgemm
  /// that streams everything from DRAM realistically loses 3-5x. Together
  /// with the DRAM bandwidth cap this reproduces the paper's workload-level
  /// speedups (max 1.88x), which aggregate many partially-evicted threads.
  double reuse_misses_per_flop(ReuseLevel r) const {
    switch (r) {
      case ReuseLevel::kLow: return 0.002;
      case ReuseLevel::kMedium: return 0.025;
      case ReuseLevel::kHigh: return 0.060;
    }
    return 0.0;
  }

  /// How fast a running phase re-populates the LLC, as a multiple of its
  /// DRAM fill traffic (1.0 = every fetched line becomes resident).
  double fill_efficiency = 1.0;

  // --- scheduling costs ------------------------------------------------------

  /// CFS default-ish timeslice.
  double quantum = util::ms(6);
  /// Direct cost of a context switch (register/TLB/pipeline), charged to the
  /// incoming thread. Cache refill costs emerge from the occupancy model.
  double context_switch_cost = util::us(3);
  /// Extra cost when a thread migrates to a different core (per-core
  /// runqueue mode): cold private caches + runqueue locking.
  double migration_cost = util::us(10);
  /// Cost of one pp_begin/pp_end call through the kernel extension
  /// (syscall + wait-queue bookkeeping + possible reschedule). Calibrated
  /// against the paper's Fig. 11: 512 middle-loop periods (1024 calls) on a
  /// ~49 ms dgemm → ~19% overhead.
  double api_call_cost = util::us(9);
  /// Cost of an API call that hits the cached-decision fast path (a few
  /// atomic loads + compare, no kernel entry). Calibrated against Fig. 11's
  /// inner-loop point: 524288 calls → ~59% overhead on the same dgemm.
  double api_fast_path_cost = util::ns(55);

  // --- energy ----------------------------------------------------------------

  /// Package power of one active core (dynamic + its share of static).
  double core_active_power = 6.0;  // W
  /// Same core clock-gated on the idle loop.
  double core_idle_power = 0.8;  // W
  /// Uncore (LLC, ring, memory controller) static power.
  double uncore_power = 12.0;  // W
  /// DRAM background (refresh, PLL) power.
  double dram_static_power = 4.0;  // W
  /// DRAM access energy per byte transferred (activation+IO at typical row
  /// locality, DDR3 class).
  double dram_energy_per_byte = 0.15e-9;  // J/B

  // --- derived ---------------------------------------------------------------

  double flop_time() const { return 1.0 / core_flops; }
};

}  // namespace rda::sim
