#include "obs/recorder.hpp"

namespace rda::obs {

EventRecorder::EventRecorder(std::size_t capacity) : ring_(capacity) {}

void EventRecorder::record(const Event& event) {
  ring_.push(event);
  SpinGuard guard(lock_);
  ++counts_[static_cast<std::size_t>(event.kind)];
  switch (event.kind) {
    case EventKind::kBlock:
      block_time_[event.period] = event.time;
      break;
    case EventKind::kWake:
    case EventKind::kForceAdmit:
    case EventKind::kCancel:
    case EventKind::kReject:
    case EventKind::kReclaim: {
      // Any exit from the waitlist closes the wait interval. A force-admit
      // on the begin path (never blocked) has no open interval and is
      // skipped; cancels, rejections and reaps count the aborted wait as
      // latency too — that is the latency the caller actually suffered.
      // A reclaim of an *admitted* period has no open interval either.
      const auto it = block_time_.find(event.period);
      if (it != block_time_.end()) {
        waits_.add(event.time - it->second);
        block_time_.erase(it);
      }
      break;
    }
    default:
      break;
  }
}

std::uint64_t EventRecorder::count(EventKind kind) const {
  SpinGuard guard(lock_);
  return counts_[static_cast<std::size_t>(kind)];
}

WaitHistogram EventRecorder::wait_histogram() const {
  SpinGuard guard(lock_);
  return waits_;
}

}  // namespace rda::obs
