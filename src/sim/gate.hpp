// Interface between the simulator engine and a phase-boundary scheduler.
//
// The RDA core (src/core) implements this to intercept progress-period
// entry/exit, exactly like the paper's kernel extension intercepts pp_begin
// and pp_end. The engine only knows: a begin may block the thread (kernel
// wait queue) and costs some API time; an end costs API time and may wake
// previously blocked threads through the ThreadWaker.
#pragma once

#include "sim/ids.hpp"
#include "sim/phase.hpp"

namespace rda::sim {

/// Engine-side wake channel handed to the gate. wake(t) means "thread t's
/// pending period has been admitted; make it runnable".
class ThreadWaker {
 public:
  virtual ~ThreadWaker() = default;
  virtual void wake(ThreadId thread) = 0;
};

/// Outcome of a pp_begin consult.
struct BeginResult {
  bool admit = true;
  /// API-call time charged to the calling thread (syscall, bookkeeping,
  /// possible reschedule). The gate decides fast-path vs slow-path.
  double call_cost = 0.0;
  /// §6 cache-partitioning extension: maximum LLC occupancy this phase may
  /// hold (bytes); 0 means unpartitioned. Set by gates that confine
  /// streaming/oversized periods to a small partition.
  double occupancy_cap = 0.0;
};

struct EndResult {
  double call_cost = 0.0;
};

/// What the hardware counters observed while a period ran — handed to the
/// gate at pp_end. Basis for the counter-feedback extension (related-work
/// discussion: "using real-time hardware counters to determine current
/// resource usage, in combination with demand aware scheduling").
struct PhaseObservation {
  double duration = 0.0;        ///< seconds from first body execution to end
  double peak_occupancy = 0.0;  ///< max LLC bytes the phase ever held
  double avg_occupancy = 0.0;   ///< time-averaged LLC bytes
  double dram_bytes = 0.0;      ///< total DRAM traffic the phase caused
  double flops = 0.0;           ///< work retired
  /// The LLC was ~full at some point while the phase ran: its peak
  /// occupancy is a lower bound on its appetite, not a measurement.
  bool cache_contended = false;
};

class PhaseGate {
 public:
  virtual ~PhaseGate() = default;

  /// The engine calls this once per *marked* phase when the owning thread
  /// reaches it. If !admit, the engine parks the thread until wake().
  virtual BeginResult on_phase_begin(ThreadId thread, ProcessId process,
                                     const PhaseSpec& phase, double now) = 0;

  /// Called when a marked phase completes. The gate updates its load
  /// accounting and may wake waitlisted threads (via the ThreadWaker given
  /// at attach time). `observed` carries the hardware-counter view of the
  /// finished period (counter-feedback extension).
  virtual EndResult on_phase_end(ThreadId thread, ProcessId process,
                                 const PhaseSpec& phase,
                                 const PhaseObservation& observed,
                                 double now) = 0;

  /// Called once by the engine before the run starts.
  virtual void attach(ThreadWaker& waker) = 0;

  /// Fault-recovery hooks (default no-ops so ungated/simple gates ignore
  /// them):

  /// The owning thread died or was torn down without closing its period —
  /// the gate should reap whatever it still holds (load or waitlist slot).
  virtual void on_thread_exit(ThreadId thread, double now) {
    (void)thread;
    (void)now;
  }

  /// Lost-wake recovery probe: true when `thread`'s period has actually
  /// been granted even though no wake() was delivered — the engine may then
  /// resume the thread directly.
  virtual bool pending_admitted(ThreadId thread) const {
    (void)thread;
    return false;
  }

  /// Last-resort progress hook: the engine has unfinished threads but none
  /// runnable. Returns true when the gate changed state (escalated a
  /// starved waiter, surfaced a rejection, woke somebody) — the engine then
  /// re-evaluates instead of declaring deadlock.
  virtual bool on_stall(double now) {
    (void)now;
    return false;
  }
};

}  // namespace rda::sim
