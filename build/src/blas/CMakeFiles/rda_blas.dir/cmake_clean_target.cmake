file(REMOVE_RECURSE
  "librda_blas.a"
)
