#include "profiler/multi_granularity.hpp"

#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "util/units.hpp"

namespace rda::prof {
namespace {

using rda::util::KB;
using rda::util::MB;

/// Fresh-pass factory over: long phase A + short phase B + long phase A2.
/// Phase B is only visible at fine granularity (it spans less than one
/// coarse window).
std::unique_ptr<trace::TraceSource> make_layered_trace() {
  auto phase = [](std::uint64_t base, std::uint64_t size,
                  std::uint64_t accesses,
                  std::uint64_t seed) -> std::unique_ptr<trace::TraceSource> {
    trace::RegionSpec spec;
    spec.base = base;
    spec.size_bytes = size;
    spec.pattern = trace::Pattern::kHotCold;
    spec.hot_fraction = 0.625;
    spec.hot_probability = 0.97;
    spec.access_granularity = 8;
    return std::make_unique<trace::RegionAccessSource>(spec, accesses, seed);
  };
  std::vector<std::unique_ptr<trace::TraceSource>> parts;
  const std::uint64_t coarse = 1u << 18;
  parts.push_back(phase(0x10000000, MB(2), coarse * 4, 1));   // A: 4 coarse
  parts.push_back(phase(0x40000000, KB(256), coarse, 2));     // B: 1 coarse
  parts.push_back(phase(0x20000000, MB(2), coarse * 4, 3));   // A2
  return std::make_unique<trace::ConcatSource>(std::move(parts));
}

MultiGranularityConfig layered_config() {
  MultiGranularityConfig cfg;
  cfg.windows = {1u << 18, 1u << 16};  // coarse + fine
  cfg.hot_threshold = 4;
  cfg.detector.min_windows = 3;
  return cfg;
}

TEST(MultiGranularity, LadderDerivedWhenUnspecified) {
  MultiGranularityConfig cfg;
  cfg.base_window = 1u << 20;
  cfg.levels = 3;
  cfg.ladder_ratio = 4;
  const MultiGranularityProfiler profiler(cfg);
  const auto& ladder = profiler.window_ladder();
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_EQ(ladder[0], 1u << 20);
  EXPECT_EQ(ladder[1], 1u << 18);
  EXPECT_EQ(ladder[2], 1u << 16);
}

TEST(MultiGranularity, ExplicitWindowsSortedCoarseFirst) {
  MultiGranularityConfig cfg;
  cfg.windows = {1u << 14, 1u << 20, 1u << 17};
  const MultiGranularityProfiler profiler(cfg);
  const auto& ladder = profiler.window_ladder();
  EXPECT_EQ(ladder[0], 1u << 20);
  EXPECT_EQ(ladder[2], 1u << 14);
}

TEST(MultiGranularity, FindsCoarsePhases) {
  const MultiGranularityProfiler profiler(layered_config());
  const auto report = profiler.profile(make_layered_trace);
  // The two long phases must be found at the coarse granularity.
  int coarse_periods = 0;
  for (const GranularPeriod& p : report.periods) {
    if (p.window_accesses == (1u << 18)) ++coarse_periods;
  }
  EXPECT_GE(coarse_periods, 2);
}

TEST(MultiGranularity, FinerPeriodsOnlyWhereUncovered) {
  const MultiGranularityProfiler profiler(layered_config());
  const auto report = profiler.profile(make_layered_trace);
  // Fine-granularity findings inside the long phases are redundant and
  // must be suppressed; the short middle phase region may survive as fine.
  for (std::size_t i = 0; i + 1 < report.periods.size(); ++i) {
    const GranularPeriod& a = report.periods[i];
    const GranularPeriod& b = report.periods[i + 1];
    const std::uint64_t lo = std::max(a.first_access, b.first_access);
    const std::uint64_t hi = std::min(a.last_access, b.last_access);
    const std::uint64_t overlap = hi > lo ? hi - lo : 0;
    EXPECT_LE(static_cast<double>(overlap),
              0.5 * static_cast<double>(std::min(a.span(), b.span())))
        << "periods " << i << " and " << i + 1 << " largely overlap";
  }
}

TEST(MultiGranularity, PerGranularityResultsExposed) {
  const MultiGranularityProfiler profiler(layered_config());
  const auto report = profiler.profile(make_layered_trace);
  ASSERT_EQ(report.per_granularity.size(), 2u);
  EXPECT_EQ(report.per_granularity[0].first, 1u << 18);
  EXPECT_EQ(report.per_granularity[1].first, 1u << 16);
  // The fine pass sees at least as many windows' worth of periods.
  EXPECT_GE(report.per_granularity[1].second.size(),
            report.per_granularity[0].second.size());
}

TEST(MultiGranularity, MergedPeriodsSortedByOffset) {
  const MultiGranularityProfiler profiler(layered_config());
  const auto report = profiler.profile(make_layered_trace);
  for (std::size_t i = 0; i + 1 < report.periods.size(); ++i) {
    EXPECT_LE(report.periods[i].first_access,
              report.periods[i + 1].first_access);
  }
}

}  // namespace
}  // namespace rda::prof
