// Quickstart: the paper's Figure 4, running for real.
//
//   int main(int argc, char **argv) {
//     double *A, *B, *C;
//     int n = 512;                       // matrix width and height
//     double pp_id;
//     initializeMatrices(n, A, B, C);
//     pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
//     DGEMM(n, A, B, C);
//     pp_end(pp_id);
//     displayResult();
//   }
//
// pp_begin declares the kernel's just-in-time resource demand (6.3 MB of
// last-level cache, heavily reused); the demand-aware scheduler admits the
// period immediately when the cache has room, or blocks the caller until a
// completing period frees enough capacity.
#include <cstdio>
#include <vector>

#include "api/pp.hpp"
#include "blas/level3.hpp"

using namespace rda;
using rda::api::pp_begin;
using rda::api::pp_configure;
using rda::api::pp_end;
using rda::util::MB;

int main() {
  // Configure the process-wide gate for the paper's machine (15 MB LLC,
  // RDA:Strict). Call once before spawning workers.
  rt::GateConfig config;
  config.llc_capacity_bytes = static_cast<double>(MB(15));
  config.policy = core::PolicyKind::kStrict;
  pp_configure(config);

  const std::size_t n = 512;
  std::vector<double> A(n * n, 1.0), B(n * n, 0.5), C(n * n, 0.0);

  // --- the paper's Figure 4, almost verbatim -------------------------------
  const auto pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
  blas::dgemm(n, n, n, 1.0, A, B, 0.0, C);  // DGEMM(n, A, B, C)
  pp_end(pp_id);
  // --------------------------------------------------------------------------

  std::printf("dgemm(%zu) ran inside progress period %llu\n", n,
              static_cast<unsigned long long>(pp_id));
  std::printf("C[0][0] = %.1f (expected %.1f)\n", C[0], 0.5 * n);

  const rt::GateStats stats = api::pp_gate().stats();
  std::printf("gate: %llu begins, %llu immediate admissions, %llu waits\n",
              static_cast<unsigned long long>(stats.monitor.begins),
              static_cast<unsigned long long>(
                  stats.monitor.immediate_admissions),
              static_cast<unsigned long long>(stats.waits));
  return 0;
}
