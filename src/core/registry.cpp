#include "core/registry.hpp"

#include "util/check.hpp"

namespace rda::core {

namespace {
/// Per-registry stash bound: deep enough to absorb any realistic number of
/// concurrently active periods per shard, small enough to be noise.
constexpr std::size_t kNodeStashCap = 64;
}  // namespace

PeriodId PeriodRegistry::insert(PeriodRecord&& record) {
  for (const ResourceDemand& d : record.demands) {
    RDA_CHECK_MSG(d.amount >= 0.0, "negative period demand on "
                                       << to_string(d.resource));
  }
  RDA_CHECK_MSG(by_thread_.count(record.thread) == 0,
                "thread " << record.thread
                          << " already has an active period; periods do not "
                             "nest");
  record.id = next_id_;
  next_id_ += stride_;
  const PeriodId id = record.id;
  if (!thread_nodes_.empty()) {
    ThreadMap::node_type node = std::move(thread_nodes_.back());
    thread_nodes_.pop_back();
    node.key() = record.thread;
    node.mapped() = id;
    by_thread_.insert(std::move(node));
  } else {
    by_thread_.emplace(record.thread, id);
  }
  if (!record_nodes_.empty()) {
    RecordMap::node_type node = std::move(record_nodes_.back());
    record_nodes_.pop_back();
    node.key() = id;
    node.mapped() = std::move(record);
    records_.insert(std::move(node));
  } else {
    records_.emplace(id, std::move(record));
  }
  return id;
}

const PeriodRecord* PeriodRegistry::find(PeriodId id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

PeriodRecord* PeriodRegistry::find_mutable(PeriodId id) {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

PeriodRecord PeriodRegistry::remove(PeriodId id) {
  const auto it = records_.find(id);
  RDA_CHECK_MSG(it != records_.end(),
                "pp_end with unknown period id " << id);
  RecordMap::node_type node = records_.extract(it);
  PeriodRecord record = std::move(node.mapped());
  if (record_nodes_.size() < kNodeStashCap) {
    record_nodes_.push_back(std::move(node));
  }
  ThreadMap::node_type tnode = by_thread_.extract(record.thread);
  if (tnode && thread_nodes_.size() < kNodeStashCap) {
    thread_nodes_.push_back(std::move(tnode));
  }
  return record;
}

std::optional<PeriodId> PeriodRegistry::active_for_thread(
    sim::ThreadId thread) const {
  const auto it = by_thread_.find(thread);
  if (it == by_thread_.end()) return std::nullopt;
  return it->second;
}

std::vector<PeriodRecord> PeriodRegistry::snapshot() const {
  std::vector<PeriodRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) {
    (void)id;
    out.push_back(record);
  }
  return out;
}

}  // namespace rda::core
