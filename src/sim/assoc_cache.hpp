// Set-associative LRU cache simulator.
//
// Two roles:
//   1. Validation substrate for the fluid occupancy model (sim/cache_model):
//      the engine's analytic miss rates should agree in shape with a real
//      LRU cache replaying the same access patterns
//      (tests/sim/assoc_cache_test.cpp, bench/validate_cache_model).
//   2. Mechanism for the paper's §6 future-work extension: way partitioning
//      ("we can partition the cache and give this application only a small
//      portion"). Owners can be confined to a subset of the ways.
//
// Addresses are attributed to an owner (thread) so per-owner occupancy and
// hit ratios can be compared against the fluid model.
//
// Set sampling (`AssocCacheConfig::set_sample` = K > 1) simulates only the
// ~1/K sets selected by a hash of the set index and scales every reported
// count by sets / sampled_sets. Set-index hashing keeps the sample unbiased
// for strided patterns that would alias a simple `set % K` rule. Accesses to
// unsampled sets do no bookkeeping (and report a hit); per-access return
// values are only meaningful in full mode.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/ids.hpp"

namespace rda::sim {

struct AssocCacheConfig {
  std::uint64_t capacity_bytes = 15360 * 1024ull;  // paper Table 1 LLC
  std::uint32_t ways = 20;                         // E5-2420 L3 is 20-way
  std::uint32_t line_bytes = 64;
  /// Simulate ~1 in `set_sample` sets (1 = full model).
  std::uint32_t set_sample = 1;
};

struct AssocCacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      ///< capacity/conflict replacements
  std::uint64_t invalidations = 0;  ///< lines dropped by flush_owner

  double hit_ratio() const {
    return accesses ? static_cast<double>(hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  double miss_ratio() const { return accesses ? 1.0 - hit_ratio() : 0.0; }
};

class SetAssociativeCache {
 public:
  explicit SetAssociativeCache(AssocCacheConfig config = {});

  /// Performs one access; returns true on hit. `owner` attributes the line.
  bool access(std::uint64_t address, ThreadId owner);

  /// Confines an owner's fills to ways [0, allowed_ways). Pass `ways()` (or
  /// anything >= it) to lift the restriction. Hits outside the partition
  /// still count (data already resident is not flushed).
  void set_partition(ThreadId owner, std::uint32_t allowed_ways);
  void clear_partition(ThreadId owner);

  /// Invalidates every line owned by `owner` (used when a phase ends).
  /// Counted as invalidations, not evictions: nothing displaced these lines.
  void flush_owner(ThreadId owner);

  std::uint64_t occupancy_lines(ThreadId owner) const;
  std::uint64_t occupancy_bytes(ThreadId owner) const;

  /// Counts are scaled by sets/sampled_sets when set sampling is active.
  AssocCacheStats stats() const { return scaled(stats_); }
  AssocCacheStats owner_stats(ThreadId owner) const;

  std::uint32_t ways() const { return ways_; }
  std::uint32_t sets() const { return sets_; }
  std::uint32_t sampled_sets() const { return sampled_sets_; }
  std::uint64_t capacity_bytes() const { return config_.capacity_bytes; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;  ///< global access counter for LRU
    ThreadId owner = kInvalidThread;
    bool valid = false;
  };

  static constexpr std::uint32_t kUnsampledSet =
      static_cast<std::uint32_t>(-1);

  Line* find_line(std::uint64_t slot, std::uint64_t tag);
  Line* pick_victim(std::uint64_t slot, std::uint32_t allowed_ways);
  /// Grows the dense per-owner arrays to cover `owner`.
  void ensure_owner(ThreadId owner);
  AssocCacheStats scaled(const AssocCacheStats& raw) const;
  std::uint64_t scaled(std::uint64_t raw) const;

  AssocCacheConfig config_;
  std::uint32_t ways_ = 0;
  std::uint32_t sets_ = 0;
  std::uint32_t sampled_sets_ = 0;
  double sample_factor_ = 1.0;  ///< sets_ / sampled_sets_
  std::vector<Line> lines_;     ///< sampled_sets_ x ways_, row-major
  /// Maps a set index to its storage slot, or kUnsampledSet. Empty in full
  /// mode (identity mapping).
  std::vector<std::uint32_t> set_slot_;
  /// Dense per-owner state indexed by ThreadId (owner ids are small
  /// sequential integers); 0 ways in partition_ways_ means unpartitioned.
  std::vector<std::uint32_t> partition_ways_;
  std::vector<std::uint64_t> owner_lines_;
  std::vector<AssocCacheStats> owner_stats_;
  AssocCacheStats stats_;
  std::uint64_t clock_ = 0;
};

}  // namespace rda::sim
