#include "core/waitlist.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace rda::core {
namespace {

Waitlist::Entry entry(PeriodId period, sim::ThreadId thread,
                      sim::ProcessId process) {
  return Waitlist::Entry{period, thread, process, 0.0};
}

TEST(Waitlist, FifoOrderPreserved) {
  Waitlist wl;
  wl.push(entry(1, 10, 0));
  wl.push(entry(2, 11, 0));
  wl.push(entry(3, 12, 1));
  ASSERT_EQ(wl.size(), 3u);
  EXPECT_EQ(wl.entries().front().period, 1u);
  EXPECT_EQ(wl.entries().back().period, 3u);
}

TEST(Waitlist, DrainWorkConservingSkipsNonFitting) {
  Waitlist wl;
  wl.push(entry(1, 10, 0));
  wl.push(entry(2, 11, 0));
  wl.push(entry(3, 12, 1));
  // Admit odd period ids only.
  const auto admitted = wl.drain_admissible(
      [](const Waitlist::Entry& e) { return e.period % 2 == 1; },
      /*head_only=*/false);
  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0].period, 1u);
  EXPECT_EQ(admitted[1].period, 3u);
  ASSERT_EQ(wl.size(), 1u);
  EXPECT_EQ(wl.entries().front().period, 2u);
}

TEST(Waitlist, DrainHeadOnlyStopsAtFirstRejection) {
  Waitlist wl;
  wl.push(entry(1, 10, 0));
  wl.push(entry(2, 11, 0));
  wl.push(entry(3, 12, 1));
  const auto admitted = wl.drain_admissible(
      [](const Waitlist::Entry& e) { return e.period != 2; },
      /*head_only=*/true);
  // Head (1) admitted, 2 rejected -> stop; 3 never examined.
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].period, 1u);
  EXPECT_EQ(wl.size(), 2u);
}

TEST(Waitlist, DrainAdmitAllEmptiesList) {
  Waitlist wl;
  for (PeriodId id = 1; id <= 5; ++id) wl.push(entry(id, 10, 0));
  const auto admitted = wl.drain_admissible(
      [](const Waitlist::Entry&) { return true; }, false);
  EXPECT_EQ(admitted.size(), 5u);
  EXPECT_TRUE(wl.empty());
}

TEST(Waitlist, RemoveProcessPullsWholeGroup) {
  Waitlist wl;
  wl.push(entry(1, 10, 7));
  wl.push(entry(2, 11, 8));
  wl.push(entry(3, 12, 7));
  EXPECT_EQ(wl.count_process(7), 2u);
  const auto removed = wl.remove_process(7);
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0].period, 1u);
  EXPECT_EQ(removed[1].period, 3u);
  EXPECT_EQ(wl.size(), 1u);
  EXPECT_EQ(wl.count_process(7), 0u);
}

TEST(Waitlist, RemoveAtPullsOneEntry) {
  Waitlist wl;
  wl.push(entry(1, 10, 0));
  wl.push(entry(2, 11, 0));
  wl.push(entry(3, 12, 1));
  const Waitlist::Entry pulled = wl.remove_at(1);
  EXPECT_EQ(pulled.period, 2u);
  ASSERT_EQ(wl.size(), 2u);
  EXPECT_EQ(wl.entries()[0].period, 1u);
  EXPECT_EQ(wl.entries()[1].period, 3u);
  EXPECT_THROW(wl.remove_at(2), util::CheckFailure);
}

Waitlist::Entry sized(PeriodId period, double demand) {
  Waitlist::Entry e{period, static_cast<sim::ThreadId>(period),
                    static_cast<sim::ProcessId>(period), 0.0};
  e.demand = demand;
  return e;
}

TEST(WakeStrategy, FifoPicksFirstFitting) {
  Waitlist wl;
  wl.push(sized(1, 8.0));
  wl.push(sized(2, 2.0));
  wl.push(sized(3, 4.0));
  const FifoWakeStrategy fifo(/*work_conserving=*/true);
  const auto fits_small = [](const Waitlist::Entry& e) {
    return e.demand <= 4.0;
  };
  EXPECT_EQ(fifo.select(wl.entries(), fits_small), 1u);
  const auto fits_none = [](const Waitlist::Entry&) { return false; };
  EXPECT_EQ(fifo.select(wl.entries(), fits_none), WakeStrategy::npos);
}

TEST(WakeStrategy, FifoHeadOnlyBlocksBehindNonFittingHead) {
  Waitlist wl;
  wl.push(sized(1, 8.0));
  wl.push(sized(2, 2.0));
  const FifoWakeStrategy head_only(/*work_conserving=*/false);
  const auto fits_small = [](const Waitlist::Entry& e) {
    return e.demand <= 4.0;
  };
  // The head does not fit: nothing may be admitted past it.
  EXPECT_EQ(head_only.select(wl.entries(), fits_small), WakeStrategy::npos);
  const auto fits_all = [](const Waitlist::Entry&) { return true; };
  EXPECT_EQ(head_only.select(wl.entries(), fits_all), 0u);
}

TEST(WakeStrategy, BestFitPicksLargestFittingDemand) {
  Waitlist wl;
  wl.push(sized(1, 3.0));
  wl.push(sized(2, 9.0));  // does not fit
  wl.push(sized(3, 6.0));
  wl.push(sized(4, 6.0));  // tie: earlier index wins
  const BestFitWakeStrategy best_fit;
  const auto fits = [](const Waitlist::Entry& e) { return e.demand <= 6.0; };
  EXPECT_EQ(best_fit.select(wl.entries(), fits), 2u);
  EXPECT_EQ(best_fit.select({}, fits), WakeStrategy::npos);
}

TEST(WakeStrategy, FactoryMapsOrderAndConservation) {
  EXPECT_EQ(make_wake_strategy(WakeOrder::kFifo, true)->name(), "fifo");
  EXPECT_EQ(make_wake_strategy(WakeOrder::kFifo, false)->name(),
            "fifo-head-only");
  EXPECT_EQ(make_wake_strategy(WakeOrder::kBestFitDemand, true)->name(),
            make_wake_strategy(WakeOrder::kBestFitDemand, false)->name());
  EXPECT_EQ(to_string(WakeOrder::kBestFitDemand), "best-fit");
}

TEST(Waitlist, EmptyOperations) {
  Waitlist wl;
  EXPECT_TRUE(wl.empty());
  EXPECT_TRUE(wl.drain_admissible([](const auto&) { return true; }, false)
                  .empty());
  EXPECT_TRUE(wl.remove_process(1).empty());
  EXPECT_EQ(wl.count_process(1), 0u);
}

}  // namespace
}  // namespace rda::core
