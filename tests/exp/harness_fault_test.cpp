// run_matrix fault isolation: a cell whose simulation throws must land as an
// error row (workload/policy filled, metrics zeroed) while every other cell
// completes — and the rows, error rows included, must be independent of the
// --jobs fan-out.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/harness.hpp"

namespace rda::exp {
namespace {

workload::WorkloadSpec tiny(const char* name) {
  const auto specs = workload::table2_workloads();
  return workload::scale_workload(workload::find_workload(specs, name),
                                  0.05, 8);
}

RunConfig good_config(core::PolicyKind policy) {
  RunConfig cfg;
  cfg.engine.machine = sim::MachineConfig::e5_2420();
  cfg.policy = policy;
  return cfg;
}

RunConfig poison_config() {
  // Engine construction RDA_CHECKs max_step > 0, so this cell throws
  // deterministically — same message on every run and every jobs value.
  RunConfig cfg = good_config(core::PolicyKind::kStrict);
  cfg.engine.max_step = 0.0;
  return cfg;
}

TEST(HarnessFault, PoisonedCellBecomesErrorRowOthersComplete) {
  const std::vector<workload::WorkloadSpec> specs = {tiny("BLAS-3")};
  const std::vector<RunConfig> configs = {
      good_config(core::PolicyKind::kLinuxDefault), poison_config(),
      good_config(core::PolicyKind::kStrict)};

  const std::vector<RunRow> rows = run_matrix(specs, configs, 1);
  ASSERT_EQ(rows.size(), 3u);

  EXPECT_FALSE(rows[0].failed());
  EXPECT_GT(rows[0].gflops, 0.0);

  // The poisoned cell: identified, zeroed, and attributed.
  EXPECT_TRUE(rows[1].failed());
  EXPECT_EQ(rows[1].workload, "BLAS-3");
  EXPECT_EQ(rows[1].policy, "RDA:Strict");
  EXPECT_NE(rows[1].error.find("max_step"), std::string::npos)
      << rows[1].error;
  EXPECT_EQ(rows[1].gflops, 0.0);
  EXPECT_EQ(rows[1].system_joules, 0.0);

  // The cell AFTER the poisoned one still ran.
  EXPECT_FALSE(rows[2].failed());
  EXPECT_GT(rows[2].gflops, 0.0);

  EXPECT_EQ(failed_cells(rows), 1u);
}

TEST(HarnessFault, ErrorRowsAreJobsInvariant) {
  const std::vector<workload::WorkloadSpec> specs = {tiny("BLAS-3"),
                                                     tiny("Water_nsq")};
  const std::vector<RunConfig> configs = {
      good_config(core::PolicyKind::kStrict), poison_config()};

  const std::vector<RunRow> serial = run_matrix(specs, configs, 1);
  const std::vector<RunRow> parallel = run_matrix(specs, configs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].workload, parallel[i].workload) << i;
    EXPECT_EQ(serial[i].policy, parallel[i].policy) << i;
    EXPECT_EQ(serial[i].error, parallel[i].error) << i;
    EXPECT_EQ(serial[i].failed(), parallel[i].failed()) << i;
    EXPECT_EQ(serial[i].gflops, parallel[i].gflops) << i;
    EXPECT_EQ(serial[i].system_joules, parallel[i].system_joules) << i;
  }
  EXPECT_EQ(failed_cells(serial), 2u);  // one poisoned cell per workload
}

TEST(HarnessFault, FailedCellsCountsOnlyErrorRows) {
  std::vector<RunRow> rows(3);
  EXPECT_EQ(failed_cells(rows), 0u);
  rows[1].error = "boom";
  EXPECT_EQ(failed_cells(rows), 1u);
}

}  // namespace
}  // namespace rda::exp
