file(REMOVE_RECURSE
  "CMakeFiles/ablate_sched_mode.dir/ablate_sched_mode.cpp.o"
  "CMakeFiles/ablate_sched_mode.dir/ablate_sched_mode.cpp.o.d"
  "ablate_sched_mode"
  "ablate_sched_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sched_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
