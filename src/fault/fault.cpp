#include "fault/fault.hpp"

#include "util/rng.hpp"

namespace rda::fault {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThreadDeath: return "thread_death";
    case FaultKind::kLostWake: return "lost_wake";
    case FaultKind::kDelayedWake: return "delayed_wake";
    case FaultKind::kCorruptCounter: return "corrupt_counter";
    case FaultKind::kNodeFail: return "node_fail";
    case FaultKind::kNodeRecover: return "node_recover";
  }
  return "?";
}

std::string_view to_string(Hook hook) {
  switch (hook) {
    case Hook::kAdmit: return "admit";
    case Hook::kBlock: return "block";
    case Hook::kWake: return "wake";
    case Hook::kRelease: return "release";
    case Hook::kNodeRoute: return "node_route";
  }
  return "?";
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::size_t fault_count,
                            std::size_t thread_count) {
  util::Rng rng(seed);
  FaultPlan plan;
  for (std::size_t i = 0; i < fault_count; ++i) {
    FaultSpec spec;
    switch (rng.next_below(3)) {
      case 0:
        spec.kind = FaultKind::kThreadDeath;
        // Split deaths between the admitted and the waitlisted state.
        spec.hook = rng.next_bool(0.5) ? Hook::kAdmit : Hook::kBlock;
        break;
      case 1:
        spec.kind = FaultKind::kLostWake;
        spec.hook = Hook::kWake;
        break;
      default:
        spec.kind = FaultKind::kCorruptCounter;
        spec.hook = Hook::kRelease;
        spec.factor = rng.next_double(0.1, 10.0);
        break;
    }
    if (thread_count > 0 && rng.next_bool(0.5)) {
      spec.thread = static_cast<sim::ThreadId>(rng.next_below(
          static_cast<std::uint64_t>(thread_count)));
    }
    spec.at_count = 1 + rng.next_below(4);
    plan.add(spec);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) {
  armed_.reserve(plan.specs().size());
  for (const FaultSpec& spec : plan.specs()) {
    armed_.push_back(Armed{spec, 0, false});
  }
}

const FaultSpec* FaultInjector::consult(Hook hook, sim::ThreadId thread,
                                        int node) {
  std::lock_guard<std::mutex> guard(mu_);
  ++consults_;
  const FaultSpec* firing = nullptr;
  for (Armed& armed : armed_) {
    if (armed.fired) continue;
    const FaultSpec& spec = armed.spec;
    if (spec.hook != hook) continue;
    if (spec.thread != sim::kInvalidThread && spec.thread != thread) continue;
    if (spec.node >= 0 && spec.node != node) continue;
    ++armed.matches;
    // `>=` not `==`: a spec whose count was reached while an earlier spec
    // fired on the same consult takes the next matching one.
    if (firing == nullptr && armed.matches >= spec.at_count) {
      armed.fired = true;
      fired_log_.push_back(spec);
      firing = &armed.spec;
    }
  }
  return firing;
}

std::vector<FaultSpec> FaultInjector::fired() const {
  std::lock_guard<std::mutex> guard(mu_);
  return fired_log_;
}

std::uint64_t FaultInjector::consults() const {
  std::lock_guard<std::mutex> guard(mu_);
  return consults_;
}

std::size_t FaultInjector::armed() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::size_t pending = 0;
  for (const Armed& armed : armed_) {
    if (!armed.fired) ++pending;
  }
  return pending;
}

}  // namespace rda::fault
