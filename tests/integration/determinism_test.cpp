// The simulator must be bit-deterministic: identical inputs give identical
// Joules/GFLOPS. Policy comparisons are meaningless otherwise.
#include <gtest/gtest.h>

#include "exp/harness.hpp"

namespace rda::exp {
namespace {

RunRow run_once(core::PolicyKind policy) {
  const auto specs = workload::table2_workloads();
  const auto spec = workload::scale_workload(
      workload::find_workload(specs, "Water_nsq"), 0.1, 4);
  RunConfig cfg;
  cfg.engine.machine = sim::MachineConfig::e5_2420();
  cfg.policy = policy;
  return run_workload(spec, cfg);
}

TEST(Determinism, BaselineRunsIdentical) {
  const RunRow a = run_once(core::PolicyKind::kLinuxDefault);
  const RunRow b = run_once(core::PolicyKind::kLinuxDefault);
  EXPECT_EQ(a.system_joules, b.system_joules);
  EXPECT_EQ(a.dram_joules, b.dram_joules);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.gflops, b.gflops);
  EXPECT_EQ(a.context_switches, b.context_switches);
}

TEST(Determinism, StrictRunsIdentical) {
  const RunRow a = run_once(core::PolicyKind::kStrict);
  const RunRow b = run_once(core::PolicyKind::kStrict);
  EXPECT_EQ(a.system_joules, b.system_joules);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.gate_blocks, b.gate_blocks);
}

TEST(Determinism, PoliciesActuallyDiffer) {
  // Sanity: determinism tests would pass trivially if policies were
  // ignored; make sure strict and baseline produce different schedules.
  const RunRow base = run_once(core::PolicyKind::kLinuxDefault);
  const RunRow strict = run_once(core::PolicyKind::kStrict);
  EXPECT_NE(base.makespan, strict.makespan);
  EXPECT_GT(strict.gate_blocks, 0u);
  EXPECT_EQ(base.gate_blocks, 0u);
}

// The parallel matrix harness must be bit-identical for any --jobs value:
// every cell is an isolated Engine+gate writing only its own result slot.
// Kept small so the TSan stage can afford it; also exercised at full scale
// by micro_sim_engine and the tier-1 fig9 smoke run.
void expect_rows_identical(const std::vector<RunRow>& a,
                           const std::vector<RunRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].workload, b[i].workload) << "row " << i;
    EXPECT_EQ(a[i].policy, b[i].policy) << "row " << i;
    EXPECT_EQ(a[i].system_joules, b[i].system_joules) << "row " << i;
    EXPECT_EQ(a[i].dram_joules, b[i].dram_joules) << "row " << i;
    EXPECT_EQ(a[i].gflops, b[i].gflops) << "row " << i;
    EXPECT_EQ(a[i].gflops_per_watt, b[i].gflops_per_watt) << "row " << i;
    EXPECT_EQ(a[i].makespan, b[i].makespan) << "row " << i;
    EXPECT_EQ(a[i].total_flops, b[i].total_flops) << "row " << i;
    EXPECT_EQ(a[i].gate_blocks, b[i].gate_blocks) << "row " << i;
    EXPECT_EQ(a[i].context_switches, b[i].context_switches) << "row " << i;
    EXPECT_EQ(a[i].migrations, b[i].migrations) << "row " << i;
  }
}

std::vector<RunRow> run_small_matrix(int jobs) {
  const auto all = workload::table2_workloads();
  std::vector<workload::WorkloadSpec> specs = {
      workload::scale_workload(workload::find_workload(all, "Water_nsq"),
                               0.1, 4),
      workload::scale_workload(workload::find_workload(all, "BLAS-3"),
                               0.1, 4),
  };
  std::vector<RunConfig> configs(3);
  for (RunConfig& c : configs) c.engine.machine = sim::MachineConfig::e5_2420();
  configs[0].policy = core::PolicyKind::kLinuxDefault;
  configs[1].policy = core::PolicyKind::kStrict;
  configs[2].policy = core::PolicyKind::kCompromise;
  return run_matrix(specs, configs, jobs);
}

TEST(MatrixDeterminism, JobsCountDoesNotChangeResults) {
  const std::vector<RunRow> serial = run_small_matrix(1);
  const std::vector<RunRow> parallel = run_small_matrix(4);
  expect_rows_identical(serial, parallel);
}

TEST(MatrixDeterminism, RepeatedParallelRunsIdentical) {
  const std::vector<RunRow> a = run_small_matrix(4);
  const std::vector<RunRow> b = run_small_matrix(4);
  expect_rows_identical(a, b);
}

}  // namespace
}  // namespace rda::exp
