// Shape-pinning tests for the calibration (see sim/calibration.hpp).
// These encode the qualitative claims the reproduction depends on; if a
// constant is retuned, these tests say whether the paper-relevant shapes
// survived.
#include "sim/calibration.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "util/units.hpp"

namespace rda::sim {
namespace {

TEST(Calibration, MachineMatchesPaperTable1) {
  const MachineConfig m = MachineConfig::e5_2420();
  EXPECT_EQ(m.cores, 12);
  EXPECT_EQ(m.l1_data_bytes, util::KB(32));
  EXPECT_EQ(m.l1_insn_bytes, util::KB(32));
  EXPECT_EQ(m.l2_private_bytes, util::KB(256));
  EXPECT_EQ(m.llc_bytes, util::KB(15360));
  EXPECT_EQ(m.dram_bytes, util::GB(16));
  EXPECT_NEAR(m.clock_hz, 1.9e9, 1e6);
}

TEST(Calibration, HighReuseEvictionPenaltyInPaperRange) {
  // The paper's best co-scheduling speedup is 1.88x; the eviction penalty
  // that drives it must exceed that, but stay within a small factor.
  Calibration calib;
  const double resident =
      compute_rate(calib, ReuseLevel::kHigh, 1.0).flops_per_sec;
  const double evicted =
      compute_rate(calib, ReuseLevel::kHigh, 0.0).flops_per_sec;
  const double penalty = resident / evicted;
  EXPECT_GT(penalty, 2.5);
  EXPECT_LT(penalty, 5.0);
}

TEST(Calibration, LowReuseInsensitiveToResidency) {
  Calibration calib;
  const double resident =
      compute_rate(calib, ReuseLevel::kLow, 1.0).flops_per_sec;
  const double evicted =
      compute_rate(calib, ReuseLevel::kLow, 0.0).flops_per_sec;
  EXPECT_LT(resident / evicted, 1.1);
}

TEST(Calibration, MediumBetweenLowAndHigh) {
  Calibration calib;
  auto penalty = [&](ReuseLevel r) {
    return compute_rate(calib, r, 1.0).flops_per_sec /
           compute_rate(calib, r, 0.0).flops_per_sec;
  };
  EXPECT_GT(penalty(ReuseLevel::kMedium), penalty(ReuseLevel::kLow));
  EXPECT_LT(penalty(ReuseLevel::kMedium), penalty(ReuseLevel::kHigh));
}

TEST(Calibration, StreamingSaturatesPaperMachineBandwidth) {
  // 12 streaming (BLAS-1-like) cores must oversubscribe the E5-2420's
  // memory system — that is why the paper's BLAS-1 workload gains nothing
  // from RDA scheduling.
  Calibration calib;
  const MachineConfig m = MachineConfig::e5_2420();
  const PhaseRate solo = compute_rate(calib, ReuseLevel::kLow, 1.0);
  EXPECT_GT(12.0 * solo.dram_bytes_per_sec, m.dram_bandwidth);
}

TEST(Calibration, TwelveResidentHighReuseCoresDoNotSaturate) {
  // Cache-resident BLAS-3 traffic must fit: the win of RDA:Strict is that
  // admitted threads run at full speed.
  Calibration calib;
  const MachineConfig m = MachineConfig::e5_2420();
  const PhaseRate solo = compute_rate(calib, ReuseLevel::kHigh, 1.0);
  EXPECT_LT(12.0 * solo.dram_bytes_per_sec, m.dram_bandwidth);
}

TEST(Calibration, ApiCostsMatchFig11Calibration) {
  // 512 middle-loop periods (1024 slow calls) on a 2*512^3-flop dgemm must
  // cost ~19% of the kernel runtime; 524288 fast calls must cost ~59%.
  Calibration calib;
  const double base_seconds = 2.0 * 512 * 512 * 512 / calib.core_flops;
  const double middle_overhead = 1024.0 * calib.api_call_cost / base_seconds;
  EXPECT_NEAR(middle_overhead, 0.19, 0.05);
  const double inner_overhead =
      2.0 * 512 * 512 * calib.api_fast_path_cost / base_seconds;
  EXPECT_NEAR(inner_overhead, 0.59, 0.10);
}

TEST(Calibration, EnergySplitsPlausible) {
  // Package power dominates DRAM static power (RAPL reality), and active
  // cores dominate idle ones.
  Calibration calib;
  EXPECT_GT(calib.core_active_power, 3.0 * calib.core_idle_power);
  EXPECT_GT(12.0 * calib.core_active_power + calib.uncore_power,
            5.0 * calib.dram_static_power);
  EXPECT_GT(calib.dram_energy_per_byte, 0.0);
}

}  // namespace
}  // namespace rda::sim
