// Co-located BLAS kernels through the real userspace gate.
//
// Eight worker threads each run a sequence of BLAS-3 kernels, every kernel
// wrapped in a progress period sized to its working set (the paper's BLAS-3
// workload in miniature). The run is repeated under three policies:
//   * Linux default  — no gate, every worker free-runs,
//   * RDA:Strict     — aggregate declared demand capped at the LLC size,
//   * RDA:Compromise — capped at 2x.
// On a many-core machine with a shared LLC the strict run shows the paper's
// effect (less thrash, faster kernels); on a small CI container the example
// still demonstrates the full API and prints the admission statistics.
#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "blas/level3.hpp"
#include "runtime/affinity.hpp"
#include "runtime/gate.hpp"
#include "util/units.hpp"

using namespace rda;
using rda::util::MB;

namespace {

constexpr std::size_t kMatrix = 192;     // 3 x 192^2 doubles ~ 0.84 MB
constexpr int kWorkers = 8;
constexpr int kKernelsPerWorker = 6;

double run_policy(const char* name, double total_flops,
                  std::optional<core::PolicyKind> policy) {
  std::optional<rt::AdmissionGate> gate;
  if (policy) {
    rt::GateConfig cfg;
    cfg.llc_capacity_bytes =
        static_cast<double>(rt::detect_llc_bytes().value_or(MB(15)));
    cfg.policy = *policy;
    gate.emplace(cfg);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      rt::pin_to_cpu(w % rt::online_cpus());
      std::vector<double> a(kMatrix * kMatrix, 1.0 + w);
      std::vector<double> b(kMatrix * kMatrix, 0.5);
      std::vector<double> c(kMatrix * kMatrix, 0.0);
      const double demand =
          static_cast<double>(3 * kMatrix * kMatrix * sizeof(double));
      for (int k = 0; k < kKernelsPerWorker; ++k) {
        core::PeriodId id = core::kInvalidPeriod;
        if (gate) {
          id = gate->begin(ResourceKind::kLLC, demand, ReuseLevel::kHigh,
                           "dgemm");
        }
        blas::dgemm(kMatrix, kMatrix, kMatrix, 1.0, a, b, 0.0, c);
        if (gate) gate->end(id);
      }
    });
  }
  for (auto& t : workers) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("  %-26s  %.3f s  (%.2f GFLOPS aggregate)\n", name, seconds,
              total_flops / seconds / 1e9);
  if (gate) {
    const rt::GateStats stats = gate->stats();
    std::printf("    gate: %llu begins, %llu waits, %.1f ms total wait\n",
                static_cast<unsigned long long>(stats.monitor.begins),
                static_cast<unsigned long long>(stats.waits),
                1e3 * stats.total_wait_seconds);
  }
  return seconds;
}

}  // namespace

int main() {
  std::printf("co-locating %d workers x %d dgemm(%zu) kernels\n", kWorkers,
              kKernelsPerWorker, kMatrix);
  std::printf("detected LLC: %.1f MB\n",
              util::bytes_to_mb(rt::detect_llc_bytes().value_or(MB(15))));

  const double flops = 2.0 * kMatrix * kMatrix * kMatrix * kWorkers *
                       kKernelsPerWorker;

  struct Run {
    const char* name;
    std::optional<core::PolicyKind> policy;
  };
  const Run runs[] = {
      {"Linux default (no gate)", std::nullopt},
      {"RDA:Strict", core::PolicyKind::kStrict},
      {"RDA:Compromise(x=2)", core::PolicyKind::kCompromise},
  };
  for (const Run& run : runs) {
    run_policy(run.name, flops, run.policy);
  }
  return 0;
}
