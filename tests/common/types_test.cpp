#include "common/types.hpp"

#include <gtest/gtest.h>

namespace rda {
namespace {

TEST(Types, ResourceNames) {
  EXPECT_EQ(to_string(ResourceKind::kLLC), "LLC");
  EXPECT_EQ(to_string(ResourceKind::kMemBandwidth), "MemBW");
  EXPECT_EQ(to_string(ResourceKind::kL2), "L2");
}

TEST(Types, ReuseNamesMatchTable2Vocabulary) {
  EXPECT_EQ(to_string(ReuseLevel::kLow), "low");
  EXPECT_EQ(to_string(ReuseLevel::kMedium), "med");
  EXPECT_EQ(to_string(ReuseLevel::kHigh), "high");
}

TEST(Types, CategorizeReuseDefaults) {
  EXPECT_EQ(categorize_reuse(0.0), ReuseLevel::kLow);
  EXPECT_EQ(categorize_reuse(1.9), ReuseLevel::kLow);
  EXPECT_EQ(categorize_reuse(2.0), ReuseLevel::kMedium);
  EXPECT_EQ(categorize_reuse(7.9), ReuseLevel::kMedium);
  EXPECT_EQ(categorize_reuse(8.0), ReuseLevel::kHigh);
  EXPECT_EQ(categorize_reuse(1000.0), ReuseLevel::kHigh);
}

TEST(Types, CategorizeReuseCustomThresholds) {
  ReuseThresholds t;
  t.medium_at = 1.5;
  t.high_at = 3.0;
  EXPECT_EQ(categorize_reuse(1.4, t), ReuseLevel::kLow);
  EXPECT_EQ(categorize_reuse(2.0, t), ReuseLevel::kMedium);
  EXPECT_EQ(categorize_reuse(3.0, t), ReuseLevel::kHigh);
}

TEST(Types, PaperStyleAliases) {
  // The Fig. 4 spelling must compile and mean the same thing.
  EXPECT_EQ(RESOURCE_LLC, ResourceKind::kLLC);
  EXPECT_EQ(RESOURCE_MEM_BW, ResourceKind::kMemBandwidth);
  EXPECT_EQ(REUSE_LOW, ReuseLevel::kLow);
  EXPECT_EQ(REUSE_MED, ReuseLevel::kMedium);
  EXPECT_EQ(REUSE_HIGH, ReuseLevel::kHigh);
}

}  // namespace
}  // namespace rda
