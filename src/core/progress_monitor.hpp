// Progress monitor (§3.1, Figs. 2/5/6): the component that tracks pp_begin /
// pp_end transitions, keeps the period registry, and re-schedules waitlisted
// threads when capacity frees up.
//
// Behaviour on begin (paper Fig. 5):
//   create period -> scheduling predicate -> run (load incremented) or
//   pause (placed on the resource waitlist).
// Behaviour on end (paper Fig. 6):
//   remove from registry -> decrement load -> attempt to schedule waiting
//   threads.
//
// Extensions faithful to §3.4:
//   * thread-pool guard: when a member of a pool process is denied, the
//     whole pool is disabled; it is re-admitted only when the pool's entire
//     pending demand fits ("until there is sufficient resources for all of
//     them").
//   * liveness override: a period whose demand can never fit (larger than
//     the policy bound) is force-admitted when the resource is completely
//     free — otherwise a paper-conform system would hang forever on it.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <unordered_set>

#include "core/predicate.hpp"
#include "core/registry.hpp"
#include "core/waitlist.hpp"
#include "obs/sink.hpp"

namespace rda::core {

struct MonitorOptions {
  /// Waitlist scan mode on release: admit every fitting entry (true) or stop
  /// at the first non-fitting one (false; stricter FIFO fairness). Only
  /// meaningful under WakeOrder::kFifo.
  bool work_conserving = true;
  /// Enable the §3.4 thread-pool group pause.
  bool pool_guard = true;
  /// Order in which freed capacity is re-offered to parked periods.
  WakeOrder wake_order = WakeOrder::kFifo;
};

struct MonitorStats {
  std::uint64_t begins = 0;
  std::uint64_t ends = 0;
  std::uint64_t immediate_admissions = 0;
  std::uint64_t blocks = 0;
  std::uint64_t wakes = 0;              ///< admissions from the waitlist
  std::uint64_t forced_admissions = 0;  ///< liveness overrides
  std::uint64_t pool_disables = 0;
  std::uint64_t pool_group_admissions = 0;
  std::uint64_t cancels = 0;  ///< waitlisted requests withdrawn

  /// Field-wise accumulation (cluster layer: fleet-wide admission totals).
  MonitorStats& operator+=(const MonitorStats& o) {
    begins += o.begins;
    ends += o.ends;
    immediate_admissions += o.immediate_admissions;
    blocks += o.blocks;
    wakes += o.wakes;
    forced_admissions += o.forced_admissions;
    pool_disables += o.pool_disables;
    pool_group_admissions += o.pool_group_admissions;
    cancels += o.cancels;
    return *this;
  }
};

class ProgressMonitor {
 public:
  using WakeFn = std::function<void(sim::ThreadId)>;

  /// Non-owning references must outlive the monitor.
  ProgressMonitor(SchedulingPredicate& predicate, ResourceMonitor& resources,
                  MonitorOptions options = {});

  /// Channel used to resume a previously paused thread once its period is
  /// admitted (the kernel wake event of the paper's implementation).
  void set_waker(WakeFn waker) { waker_ = std::move(waker); }

  /// Replaces the wake-order strategy (defaults to the one selected by
  /// MonitorOptions::wake_order). Must not be null.
  void set_wake_strategy(std::unique_ptr<WakeStrategy> strategy);
  const WakeStrategy& wake_strategy() const { return *strategy_; }

  /// Attaches a lifecycle-event sink (non-owning; nullptr disables tracing
  /// at the cost of one branch per transition).
  void set_trace_sink(obs::TraceSink* sink) { sink_ = sink; }

  /// Declares a process as a task-pool (§3.4 group semantics).
  void mark_pool(sim::ProcessId process) { pools_.insert(process); }
  bool is_pool(sim::ProcessId process) const { return pools_.count(process); }
  bool pool_disabled(sim::ProcessId process) const {
    return disabled_pools_.count(process) != 0;
  }

  struct BeginOutcome {
    PeriodId id = kInvalidPeriod;
    bool admitted = false;
    bool forced = false;  ///< admitted via the liveness override
  };

  /// pp_begin. The record's id field is assigned by the registry.
  BeginOutcome begin_period(PeriodRecord record, double now);

  /// pp_end. Throws if the id is unknown. Returns the closed record.
  PeriodRecord end_period(PeriodId id, double now);

  /// Cancels a period that is still waitlisted (native-runtime timeout /
  /// shutdown path). Returns false if the period was already admitted or
  /// unknown. Rescans afterwards: removing the waiter can re-enable a pool
  /// it had disabled (and thereby admit the remaining members).
  bool cancel_waiting(PeriodId id, double now);

  const MonitorStats& stats() const { return stats_; }
  const Waitlist& waitlist() const { return waitlist_; }
  const PeriodRegistry& registry() const { return registry_; }
  std::size_t admitted_count() const { return admitted_.size(); }

 private:
  void admit(PeriodId id);  ///< bookkeeping common to every admission
  void wake_entry(const Waitlist::Entry& entry, double now);
  /// Re-evaluates the waitlist after load decreased.
  void rescan(double now);
  /// Group admission check for one disabled pool; admits and wakes the whole
  /// group when it fits. Returns true if the pool was re-enabled.
  bool try_admit_pool(sim::ProcessId process, bool force, double now);
  /// Emits one lifecycle event when a sink is attached.
  void trace(obs::EventKind kind, double now, const PeriodRecord& record);

  SchedulingPredicate* predicate_;
  ResourceMonitor* resources_;
  MonitorOptions options_;
  std::unique_ptr<WakeStrategy> strategy_;
  WakeFn waker_;
  obs::TraceSink* sink_ = nullptr;

  PeriodRegistry registry_;
  Waitlist waitlist_;
  std::unordered_set<PeriodId> admitted_;  ///< periods holding load
  std::set<sim::ProcessId> pools_;
  std::set<sim::ProcessId> disabled_pools_;
  MonitorStats stats_;
};

}  // namespace rda::core
