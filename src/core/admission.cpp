#include "core/admission.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace rda::core {

namespace {

PolicyTable build_policy_table(
    const AdmissionConfig& config, const SchedulingPolicy& default_policy,
    std::vector<std::unique_ptr<SchedulingPolicy>>& owned) {
  PolicyTable table;
  table.fill(&default_policy);
  for (const PerResourcePolicy& pr : config.resource_policies) {
    owned.push_back(make_policy(pr.policy, pr.oversubscription));
    table[static_cast<std::size_t>(pr.resource)] = owned.back().get();
  }
  return table;
}

}  // namespace

AdmissionCore::AdmissionCore(AdmissionConfig config)
    : config_(config),
      policy_(make_policy(config.policy, config.oversubscription)),
      policy_table_(
          build_policy_table(config_, *policy_, override_policies_)),
      combiner_(make_combiner(config_.combiner)),
      combiner_calm_(config_.combiner.kind == CombinerKind::kAllMustFit),
      predicate_(policy_table_, *combiner_, resources_),
      monitor_(predicate_, resources_, config.monitor),
      corrector_(config.feedback) {
  // Each configured resource's budget is bounded by ITS OWN policy, so e.g.
  // a Compromise LLC coexists with a Strict watts budget. Unconfigured
  // kinds keep a zero budget — callers only declare demands on configured
  // resources.
  const auto configure = [&](ResourceKind kind, double capacity) {
    resources_.set_capacity(kind, capacity);
    resources_.set_admission_bound(
        kind,
        policy_table_[static_cast<std::size_t>(kind)]->admission_bound(
            capacity));
  };
  configure(ResourceKind::kLLC, config_.llc_capacity_bytes);
  if (config_.bandwidth_capacity > 0.0) {
    configure(ResourceKind::kMemBandwidth, config_.bandwidth_capacity);
  }
  if (config_.energy_capacity_watts > 0.0) {
    configure(ResourceKind::kEnergyBudget, config_.energy_capacity_watts);
  }
  monitor_.set_trace_sink(config_.trace_sink);
}

void AdmissionCore::trace(obs::EventKind kind, double now,
                          const PeriodRecord& record) {
  if (config_.trace_sink == nullptr) return;
  obs::Event e;
  e.time = now;
  e.kind = kind;
  e.thread = record.thread;
  e.process = record.process;
  e.period = record.id;
  e.resource = record.primary_resource();
  e.demand = record.primary_demand();
  e.set_label(record.label);
  config_.trace_sink->record(e);
}

bool AdmissionCore::fast_path_usable(
    const ShardSlot& slot, sim::ThreadId thread, sim::ProcessId process,
    const std::vector<ResourceDemand>& demands) const {
  (void)process;
  if (!config_.fast_path) return false;
  const auto it = slot.cache.find(thread);
  if (it == slot.cache.end() || !it->second.valid) return false;
  const std::vector<ResourceDemand>& cached = it->second.demands;
  if (cached.size() != demands.size()) return false;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (cached[i].resource != demands[i].resource) return false;
    if (cached[i].amount != demands[i].amount) return false;
  }
  // Nobody else touched the load table since this thread's own last call,
  // the previous identical request was admitted, and nobody is queued ahead
  // — so replaying the predicate gives the identical "admit". The pool
  // check is the lock-free count (any disabled pool spoils the cache): the
  // per-process set lives behind the slow mutex this probe may not hold.
  if (it->second.version != resources_.version()) return false;
  if (monitor_.waitlist().size() != 0) return false;
  if (monitor_.disabled_pool_count() != 0) return false;
  return true;
}

AdmitTicket AdmissionCore::admit(AdmitRequest request, double now) {
  RDA_CHECK_MSG(!request.demands.empty(),
                "pp_begin with no declared demand from thread "
                    << request.thread);
  AdmitTicket ticket;
  ResourceDemand& primary = request.demands.front();
  const double declared = primary.amount;
  bool partitioned = false;
  // §6 partitioning transform. With counter feedback enabled the corrected
  // demand must be capped instead, so the whole transform moves into the
  // slow lane (feedback forces every call there anyway).
  if (!config_.feedback.enable && primary.resource == ResourceKind::kLLC &&
      config_.partitioning.enable &&
      primary.amount > resources_.capacity(ResourceKind::kLLC)) {
    ticket.occupancy_cap = config_.partitioning.streaming_fraction *
                           resources_.capacity(ResourceKind::kLLC);
    primary.amount = ticket.occupancy_cap;
    partitioned = true;
  }
  if (calm() && fast_admit(request, now, partitioned, declared, ticket)) {
    return ticket;
  }
  return slow_admit(std::move(request), now, partitioned, declared,
                    ticket.occupancy_cap);
}

bool AdmissionCore::fast_admit(AdmitRequest& request, double now,
                               bool partitioned, double declared,
                               AdmitTicket& ticket) {
  const std::uint32_t shard = shard_of_thread(request.thread);
  ShardSlot& slot = slots_[shard];

  bool fast_hit = false;
  if (config_.fast_path) {
    std::lock_guard<std::mutex> cache_lock(slot.cache_mu);
    fast_hit = fast_path_usable(slot, request.thread, request.process,
                                request.demands);
  }

  // Claim the budget demand by demand; any shortfall rolls back every
  // partial claim and routes the decision to the slow lane (which can
  // park us — the fast lane never parks anybody).
  std::size_t acquired = 0;
  for (; acquired < request.demands.size(); ++acquired) {
    const ResourceDemand& d = request.demands[acquired];
    if (!resources_.try_acquire(d.resource, d.amount, shard)) break;
  }
  if (acquired < request.demands.size()) {
    for (std::size_t j = 0; j < acquired; ++j) {
      resources_.decrement_load(request.demands[j].resource,
                                request.demands[j].amount, shard);
    }
    return false;
  }

  PeriodRecord record;
  record.thread = request.thread;
  record.process = request.process;
  record.demands = std::move(request.demands);
  record.reuse = request.reuse;
  record.label = std::move(request.label);
  record.declared_demand = declared;
  record.declared_bandwidth = record.demand_for(ResourceKind::kMemBandwidth);
  record.begin_time = now;
  record.lease_epoch = monitor_.epoch();
  record.admitted = true;  // budget already charged
  PeriodId id = kInvalidPeriod;
  try {
    id = monitor_.mutable_registry().insert(std::move(record));
  } catch (...) {
    // Nested begin: return the budget so the thrown begin leaves no
    // footprint, exactly like the slow lane's pre-stats registry check.
    // insert validates before moving, so the record still owns the demands.
    for (const ResourceDemand& d : record.demands) {
      resources_.decrement_load(d.resource, d.amount, shard);
    }
    throw;
  }
  slot.begins.fetch_add(1);
  slot.immediate.fetch_add(1);
  if (partitioned) partitioned_periods_.fetch_add(1);
  if (fast_hit) fast_path_hits_.fetch_add(1);
  if (config_.trace_sink != nullptr) {
    const PeriodRecord* stored = monitor_.registry().find(id);
    RDA_CHECK(stored != nullptr);  // our own record; only we can end it
    trace(obs::EventKind::kBegin, now, *stored);
    trace(obs::EventKind::kAdmit, now, *stored);
  }
  if (config_.fast_path) {
    // The demands moved into the registry record; copy them back out for
    // the decision cache (record pointers are node-stable, and only the
    // owning thread can remove its own calm record).
    const PeriodRecord* stored = monitor_.registry().find(id);
    RDA_CHECK(stored != nullptr);
    std::lock_guard<std::mutex> cache_lock(slot.cache_mu);
    ThreadCache& cache = slot.cache[request.thread];
    cache.valid = true;
    cache.demands = stored->demands;
    cache.version = resources_.version();
  }
  ticket.id = id;
  ticket.admitted = true;
  ticket.fast_path = fast_hit;
  return true;
}

AdmitTicket AdmissionCore::slow_admit(AdmitRequest request, double now,
                                      bool partitioned, double declared,
                                      double occupancy_cap) {
  ProgressMonitor::PendingDelivery pending;
  AdmitTicket ticket;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    ProgressMonitor::WakeBatch batch(monitor_, &pending);
    ticket = slow_admit_locked(std::move(request), now, partitioned, declared,
                               occupancy_cap);
  }
  monitor_.deliver(std::move(pending));
  return ticket;
}

AdmitTicket AdmissionCore::slow_admit_locked(AdmitRequest request, double now,
                                             bool partitioned, double declared,
                                             double occupancy_cap) {
  AdmitTicket ticket;
  ticket.occupancy_cap = occupancy_cap;
  const double declared_bandwidth =
      [&] {
        for (const ResourceDemand& d : request.demands) {
          if (d.resource == ResourceKind::kMemBandwidth) return d.amount;
        }
        return 0.0;
      }();
  ResourceDemand& primary = request.demands.front();
  if (primary.resource == ResourceKind::kLLC) {
    // Counter-feedback: charge the corrected demand learned from previous
    // instances of this period (keyed by its static code location). Only
    // reachable with feedback enabled — admit() skipped the transform then.
    if (config_.feedback.enable) {
      primary.amount *= corrector_.correction(request.label);
    }
    // Tenant-truth haircut: a tenant past the ledger's rung 1 is charged
    // its audited usage ratio — an inflator pays what it uses, an
    // under-declarer what it takes. Per-tenant intent on top of the
    // per-label corrector above.
    if (config_.tenant_ledger != nullptr) {
      primary.amount *= config_.tenant_ledger->demand_correction(
          static_cast<std::uint64_t>(request.process));
    }
    if (config_.partitioning.enable &&
        primary.amount > resources_.capacity(ResourceKind::kLLC)) {
      ticket.occupancy_cap = config_.partitioning.streaming_fraction *
                             resources_.capacity(ResourceKind::kLLC);
      primary.amount = ticket.occupancy_cap;
      partitioned = true;
    }
  }
  if (config_.feedback.enable) {
    // Vector-demand feedback: bandwidth corrections live in their own
    // per-kind state, so an LLC-only misdeclaration never reshapes the
    // bandwidth charge (and vice versa).
    for (ResourceDemand& d : request.demands) {
      if (d.resource == ResourceKind::kMemBandwidth) {
        d.amount *= corrector_.correction(request.label, d.resource);
      }
    }
  }

  const std::uint32_t shard = shard_of_thread(request.thread);
  ShardSlot& slot = slots_[shard];
  bool fast = false;
  if (config_.fast_path) {
    std::lock_guard<std::mutex> cache_lock(slot.cache_mu);
    fast = fast_path_usable(slot, request.thread, request.process,
                            request.demands);
  }

  PeriodRecord record;
  record.thread = request.thread;
  record.process = request.process;
  if (config_.fast_path) {
    record.demands = request.demands;  // copy: the cache keeps the original
  } else {
    record.demands = std::move(request.demands);
  }
  record.reuse = request.reuse;
  record.label = std::move(request.label);
  record.declared_demand = declared;
  record.declared_bandwidth = declared_bandwidth;
  const ProgressMonitor::BeginOutcome outcome =
      monitor_.begin_period(std::move(record), now);

  // Serialized, a valid probe is a proof the replay admits; under
  // concurrency a fast-lane claim can invalidate it between the probe and
  // the predicate — degrade to a miss rather than assert.
  if (fast && !outcome.admitted) fast = false;
  if (partitioned) partitioned_periods_.fetch_add(1);
  if (fast) fast_path_hits_.fetch_add(1);

  if (config_.fast_path) {
    std::lock_guard<std::mutex> cache_lock(slot.cache_mu);
    ThreadCache& cache = slot.cache[request.thread];
    cache.valid = outcome.admitted && !outcome.forced;
    cache.demands = std::move(request.demands);
    cache.version = resources_.version();
  }

  ticket.id = outcome.id;
  ticket.admitted = outcome.admitted;
  ticket.forced = outcome.forced;
  ticket.fast_path = fast;
  ticket.woke_from_waitlist = outcome.woke_from_waitlist;
  return ticket;
}

std::vector<AdmitTicket> AdmissionCore::admit_batch(
    std::vector<AdmitRequest> requests, double now) {
  std::vector<AdmitTicket> tickets(requests.size());
  struct Leftover {
    std::size_t index;
    bool partitioned;
    double declared;
  };
  std::vector<Leftover> leftovers;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    AdmitRequest& request = requests[i];
    RDA_CHECK_MSG(!request.demands.empty(),
                  "pp_begin with no declared demand from thread "
                      << request.thread);
    AdmitTicket& ticket = tickets[i];
    ResourceDemand& primary = request.demands.front();
    const double declared = primary.amount;
    bool partitioned = false;
    if (!config_.feedback.enable && primary.resource == ResourceKind::kLLC &&
        config_.partitioning.enable &&
        primary.amount > resources_.capacity(ResourceKind::kLLC)) {
      ticket.occupancy_cap = config_.partitioning.streaming_fraction *
                             resources_.capacity(ResourceKind::kLLC);
      primary.amount = ticket.occupancy_cap;
      partitioned = true;
    }
    if (calm() && fast_admit(request, now, partitioned, declared, ticket)) {
      continue;
    }
    leftovers.push_back({i, partitioned, declared});
  }
  if (!leftovers.empty()) {
    ProgressMonitor::PendingDelivery pending;
    {
      std::lock_guard<std::mutex> lock(slow_mu_);
      ProgressMonitor::WakeBatch batch(monitor_, &pending);
      for (const Leftover& l : leftovers) {
        tickets[l.index] =
            slow_admit_locked(std::move(requests[l.index]), now, l.partitioned,
                              l.declared, tickets[l.index].occupancy_cap);
      }
    }
    monitor_.deliver(std::move(pending));
  }
  return tickets;
}

bool AdmissionCore::withdraw(PeriodId id, double now) {
  ProgressMonitor::PendingDelivery pending;
  bool cancelled;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    ProgressMonitor::WakeBatch batch(monitor_, &pending);
    RDA_CHECK_MSG(monitor_.registry().find(id) != nullptr,
                  "withdraw of unknown period id " << id);
    cancelled = monitor_.cancel_waiting(id, now);
  }
  monitor_.deliver(std::move(pending));
  return cancelled;
}

WithdrawResult AdmissionCore::try_withdraw(PeriodId id, double now) {
  ProgressMonitor::PendingDelivery pending;
  WithdrawResult result;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    ProgressMonitor::WakeBatch batch(monitor_, &pending);
    if (monitor_.registry().find(id) == nullptr) {
      result = WithdrawResult::kGone;
    } else if (monitor_.cancel_waiting(id, now)) {
      result = WithdrawResult::kCancelled;
    } else {
      // cancel_waiting refused: either the grant won the race (record is
      // admitted) or the period vanished meanwhile.
      result = monitor_.registry().find(id) != nullptr
                   ? WithdrawResult::kAlreadyAdmitted
                   : WithdrawResult::kGone;
    }
  }
  monitor_.deliver(std::move(pending));
  return result;
}

bool AdmissionCore::fast_release(PeriodId id, double now,
                                 ReleaseTicket& ticket) {
  // Calm lock-free release: claim the record off its shard (only records
  // that are admitted and not force-oversubscribed qualify — everything
  // else carries slow-lane obligations) and return its budget.
  std::optional<PeriodRecord> record =
      monitor_.mutable_registry().take_if_calm(id);
  if (!record.has_value()) return false;
  ticket.fast_path = config_.fast_path;
  ShardSlot& slot = slots_[shard_of_thread(record->thread)];
  trace(obs::EventKind::kEnd, now, *record);
  if (config_.fast_path) {
    std::lock_guard<std::mutex> cache_lock(slot.cache_mu);
    ThreadCache& cache = slot.cache[record->thread];
    // Replay validity: the cached decision survives this end only if
    // nobody else touched the load table since our begin (then our
    // increment+decrement cancel out). Read BEFORE the decrement.
    const bool undisturbed = resources_.version() == cache.version;
    for (const ResourceDemand& d : record->demands) {
      resources_.decrement_load(d.resource, d.amount, record->stripe);
    }
    if (undisturbed && cache.valid) {
      cache.version = resources_.version();
    } else {
      cache.valid = false;
    }
  } else {
    for (const ResourceDemand& d : record->demands) {
      resources_.decrement_load(d.resource, d.amount, record->stripe);
    }
  }
  slot.ends.fetch_add(1);
  ticket.record = std::move(*record);
  return true;
}

ReleaseTicket AdmissionCore::release(PeriodId id,
                                     const ReleaseObservation& observed,
                                     double now) {
  if (calm()) {
    ReleaseTicket ticket;
    if (fast_release(id, now, ticket)) {
      // Dekker handshake, releaser side: the budget is returned (seq_cst);
      // now re-read the park flags. A parker whose push we miss here saw
      // our budget on its own second look — either way somebody rescans.
      if (monitor_.waitlist().size() != 0 ||
          monitor_.disabled_pool_count() != 0) {
        ProgressMonitor::PendingDelivery pending;
        {
          std::lock_guard<std::mutex> lock(slow_mu_);
          ProgressMonitor::WakeBatch batch(monitor_, &pending);
          monitor_.rescan_release(now);
        }
        monitor_.deliver(std::move(pending));
      }
      return ticket;
    }
  }
  return slow_release(id, observed, now);
}

std::vector<ReleaseTicket> AdmissionCore::release_batch(
    const std::vector<PeriodId>& ids, double now) {
  std::vector<ReleaseTicket> tickets(ids.size());
  std::vector<std::size_t> leftovers;
  bool any_fast = false;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (calm() && fast_release(ids[i], now, tickets[i])) {
      any_fast = true;
      continue;
    }
    leftovers.push_back(i);
  }
  ProgressMonitor::PendingDelivery pending;
  if (!leftovers.empty()) {
    // One slow-mutex hold, one rescan, one wake flush for every record the
    // calm lane could not claim. (end_periods rescans after all the budget
    // is back, which also covers the Dekker obligation of the fast ones.)
    std::vector<PeriodId> leftover_ids;
    leftover_ids.reserve(leftovers.size());
    for (const std::size_t i : leftovers) leftover_ids.push_back(ids[i]);
    std::lock_guard<std::mutex> lock(slow_mu_);
    ProgressMonitor::WakeBatch batch(monitor_, &pending);
    std::vector<PeriodRecord> records = monitor_.end_periods(leftover_ids, now);
    for (std::size_t j = 0; j < leftovers.size(); ++j) {
      tickets[leftovers[j]].record = std::move(records[j]);
    }
  } else if (any_fast && (monitor_.waitlist().size() != 0 ||
                          monitor_.disabled_pool_count() != 0)) {
    // Purely fast batch: the Dekker re-check escalates at most once for the
    // whole batch instead of once per release.
    std::lock_guard<std::mutex> lock(slow_mu_);
    ProgressMonitor::WakeBatch batch(monitor_, &pending);
    monitor_.rescan_release(now);
  }
  monitor_.deliver(std::move(pending));
  return tickets;
}

ReleaseTicket AdmissionCore::slow_release(PeriodId id,
                                          const ReleaseObservation& observed_in,
                                          double now) {
  ProgressMonitor::PendingDelivery pending;
  ReleaseTicket ticket;
  {
  std::lock_guard<std::mutex> lock(slow_mu_);
  ProgressMonitor::WakeBatch batch(monitor_, &pending);
  ReleaseObservation observed = observed_in;
  if (config_.fault_injector != nullptr && observed.has_counters) {
    const PeriodRecord* active = monitor_.registry().find(id);
    RDA_CHECK_MSG(active != nullptr, "pp_end with unknown period id " << id);
    const fault::FaultSpec* fired = config_.fault_injector->consult(
        fault::Hook::kRelease, active->thread);
    if (fired != nullptr && fired->kind == fault::FaultKind::kCorruptCounter) {
      // A garbage counter read: the corrector must stay within its clamp
      // bounds instead of poisoning future demands.
      observed.peak_occupancy *= fired->factor;
    }
  }
  if (observed.has_counters &&
      (config_.feedback.enable || config_.tenant_ledger != nullptr)) {
    // A reaped or reclaimed period may already be gone (end_period below
    // rejects unknown ids itself); a vanished record simply has no
    // declaration left to audit.
    const PeriodRecord* active = monitor_.registry().find(id);
    if (active != nullptr) {
      if (config_.feedback.enable) {
        corrector_.observe(active->label, active->declared_demand,
                           observed.peak_occupancy, observed.cache_contended);
        if (observed.has_bandwidth && active->declared_bandwidth > 0.0) {
          corrector_.observe(active->label, ResourceKind::kMemBandwidth,
                             active->declared_bandwidth,
                             observed.peak_bandwidth,
                             observed.bandwidth_contended);
        }
      }
      // Tenant-truth audit: the same counter evidence the corrector
      // consumes, judged per TENANT (the process identity), not per label.
      if (config_.tenant_ledger != nullptr) {
        config_.tenant_ledger->audit(
            static_cast<std::uint64_t>(active->process),
            active->declared_demand, observed.peak_occupancy,
            observed.cache_contended, now);
      }
    }
  }
  if (!config_.fast_path) {
    // end_period itself rejects unknown ids; no pre-lookup needed.
    ticket.record = monitor_.end_period(id, now);
  } else {
    const PeriodRecord* active = monitor_.registry().find(id);
    RDA_CHECK_MSG(active != nullptr, "pp_end with unknown period id " << id);
    const sim::ThreadId thread = active->thread;
    // The end is fast-pathable when no waiter can be affected: with an
    // empty waitlist the decrement wakes nobody, so the kernel entry is
    // skippable.
    const bool fast = monitor_.waitlist().empty();
    ticket.fast_path = fast;
    ShardSlot& slot = slots_[shard_of_thread(thread)];
    std::lock_guard<std::mutex> cache_lock(slot.cache_mu);
    ThreadCache& cache = slot.cache[thread];
    // Replay validity: the cached admit decision survives this end only if
    // nobody else touched the load table between our begin and now (then
    // our increment+decrement cancel and the table returns to the
    // decision's state).
    const bool undisturbed = resources_.version() == cache.version;
    ticket.record = monitor_.end_period(id, now);
    if (fast && undisturbed && cache.valid) {
      cache.version = resources_.version();
    } else {
      cache.valid = false;
    }
  }
  }
  monitor_.deliver(std::move(pending));
  return ticket;
}

ProgressMonitor::ReapOutcome AdmissionCore::reap(sim::ThreadId thread,
                                                 double now,
                                                 bool remember_waiter) {
  ProgressMonitor::PendingDelivery pending;
  ProgressMonitor::ReapOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    ProgressMonitor::WakeBatch batch(monitor_, &pending);
    {
      ShardSlot& slot = slots_[shard_of_thread(thread)];
      std::lock_guard<std::mutex> cache_lock(slot.cache_mu);
      slot.cache.erase(thread);
    }
    outcome = monitor_.reap_thread(thread, now, remember_waiter);
  }
  monitor_.deliver(std::move(pending));
  return outcome;
}

std::size_t AdmissionCore::sweep(std::uint64_t max_epoch_age, double now,
                                 bool remember_waiters) {
  ProgressMonitor::PendingDelivery pending;
  std::size_t reaped;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    ProgressMonitor::WakeBatch batch(monitor_, &pending);
    reaped = monitor_.sweep(max_epoch_age, now, remember_waiters);
    if (reaped > 0) {
      for (ShardSlot& slot : slots_) {
        std::lock_guard<std::mutex> cache_lock(slot.cache_mu);
        slot.cache.clear();
      }
    }
  }
  monitor_.deliver(std::move(pending));
  return reaped;
}

void AdmissionCore::heartbeat(sim::ThreadId thread) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  monitor_.heartbeat(thread);
}

bool AdmissionCore::watchdog_tick(double now) {
  ProgressMonitor::PendingDelivery pending;
  bool any;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    ProgressMonitor::WakeBatch batch(monitor_, &pending);
    any = monitor_.watchdog_tick(now);
  }
  monitor_.deliver(std::move(pending));
  return any;
}

bool AdmissionCore::watchdog_stalled(double now) {
  ProgressMonitor::PendingDelivery pending;
  bool any;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    ProgressMonitor::WakeBatch batch(monitor_, &pending);
    any = monitor_.watchdog_stalled(now);
  }
  monitor_.deliver(std::move(pending));
  return any;
}

bool AdmissionCore::is_admitted(PeriodId id) const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return monitor_.is_admitted(id);
}

bool AdmissionCore::is_rejected(PeriodId id) const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return monitor_.is_rejected(id);
}

bool AdmissionCore::take_rejection(PeriodId id) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return monitor_.take_rejection(id);
}

std::optional<PeriodId> AdmissionCore::take_rejection_for_thread(
    sim::ThreadId thread) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return monitor_.take_rejection_for_thread(thread);
}

std::vector<sim::ThreadId> AdmissionCore::rejected_threads() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return monitor_.rejected_threads();
}

bool AdmissionCore::is_reclaimed(PeriodId id) const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return monitor_.is_reclaimed(id);
}

bool AdmissionCore::take_reclaimed(PeriodId id) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return monitor_.take_reclaimed(id);
}

MonitorStats AdmissionCore::stats() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  MonitorStats merged = monitor_.stats();
  for (const ShardSlot& slot : slots_) {
    merged.begins += slot.begins.load();
    merged.ends += slot.ends.load();
    merged.immediate_admissions += slot.immediate.load();
  }
  return merged;
}

std::vector<obs::ResourceRow> AdmissionCore::resource_rows() const {
  std::vector<obs::ResourceRow> rows;
  for (std::size_t r = 0; r < kNumResourceKinds; ++r) {
    const ResourceKind kind = static_cast<ResourceKind>(r);
    if (resources_.capacity(kind) <= 0.0) continue;  // not configured
    obs::ResourceRow row;
    row.kind = kind;
    row.capacity = resources_.capacity(kind);
    row.bound = resources_.admission_bound(kind);
    row.usage = resources_.usage(kind);
    row.free = resources_.total_free(kind);
    row.overdraft = resources_.overdraft(kind);
    row.oversubscribed = resources_.oversubscribed(kind);
    rows.push_back(row);
  }
  return rows;
}

AdmissionCore::AuditReport AdmissionCore::audit() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  AuditReport report;
  const auto fail = [&report](const std::string& detail) {
    if (report.ok) {
      report.ok = false;
      report.detail = detail;
    }
  };

  double ground[kNumResourceKinds] = {};
  double oversub_ground[kNumResourceKinds] = {};
  for (const PeriodRecord& r : monitor_.registry().snapshot()) {
    if (!r.admitted) continue;
    for (const ResourceDemand& d : r.demands) {
      ground[static_cast<std::size_t>(d.resource)] += d.amount;
      if (r.oversub) {
        oversub_ground[static_cast<std::size_t>(d.resource)] += d.amount;
      }
    }
  }
  for (std::size_t r = 0; r < kNumResourceKinds; ++r) {
    const ResourceKind kind = static_cast<ResourceKind>(r);
    const double cap = resources_.capacity(kind);
    if (cap <= 0.0) continue;  // resource not configured
    const double tol = 1e-3 * std::max(1.0, cap);
    const double usage = resources_.usage(kind);
    if (std::abs(usage - ground[r]) > tol) {
      std::ostringstream os;
      os << "striped usage " << usage << " != admitted-record ground truth "
         << ground[r] << " on " << to_string(kind);
      fail(os.str());
    }
    const double bound = resources_.admission_bound(kind);
    if (std::isfinite(bound)) {
      const double free = resources_.total_free(kind);
      const double overdraft = resources_.overdraft(kind);
      if (std::abs(usage + free - overdraft - bound) > tol) {
        std::ostringstream os;
        os << "budget not conserved on " << to_string(kind) << ": usage "
           << usage << " + free " << free << " - overdraft " << overdraft
           << " != bound " << bound;
        fail(os.str());
      }
    }
    const double oversub = resources_.oversubscribed(kind);
    if (std::abs(oversub - oversub_ground[r]) > tol) {
      std::ostringstream os;
      os << "oversubscription tally " << oversub
         << " != oversub-record ground truth " << oversub_ground[r] << " on "
         << to_string(kind);
      fail(os.str());
    }
  }
  const std::size_t counted = monitor_.waitlist().size();
  const std::size_t merged = monitor_.waitlist().entries().size();
  if (counted != merged) {
    std::ostringstream os;
    os << "waitlist total counter " << counted << " != merged contents "
       << merged;
    fail(os.str());
  }
  return report;
}

}  // namespace rda::core
