#include "sim/assoc_cache.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rda::sim {

namespace {

bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// splitmix64 finalizer — decorrelates the sampled subset from any stride in
/// the address stream (a plain `set % K` rule aliases power-of-two strides).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

SetAssociativeCache::SetAssociativeCache(AssocCacheConfig config)
    : config_(config) {
  RDA_CHECK(config_.line_bytes > 0);
  RDA_CHECK(config_.ways > 0);
  RDA_CHECK(config_.set_sample > 0);
  RDA_CHECK(config_.capacity_bytes >= config_.line_bytes * config_.ways);
  ways_ = config_.ways;
  const std::uint64_t total_lines =
      config_.capacity_bytes / config_.line_bytes;
  sets_ = static_cast<std::uint32_t>(total_lines / ways_);
  RDA_CHECK_MSG(sets_ > 0, "cache too small for its associativity");
  RDA_CHECK_MSG(is_power_of_two(config_.line_bytes),
                "line size must be a power of two");

  if (config_.set_sample == 1) {
    sampled_sets_ = sets_;
  } else {
    set_slot_.assign(sets_, kUnsampledSet);
    for (std::uint32_t s = 0; s < sets_; ++s) {
      if (mix64(s) % config_.set_sample == 0) {
        set_slot_[s] = sampled_sets_++;
      }
    }
    RDA_CHECK_MSG(sampled_sets_ > 0,
                  "set_sample too large: no sets selected");
  }
  sample_factor_ =
      static_cast<double>(sets_) / static_cast<double>(sampled_sets_);
  lines_.assign(static_cast<std::size_t>(sampled_sets_) * ways_, Line{});
}

SetAssociativeCache::Line* SetAssociativeCache::find_line(std::uint64_t slot,
                                                          std::uint64_t tag) {
  Line* base = &lines_[slot * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

SetAssociativeCache::Line* SetAssociativeCache::pick_victim(
    std::uint64_t slot, std::uint32_t allowed_ways) {
  Line* base = &lines_[slot * ways_];
  Line* victim = nullptr;
  for (std::uint32_t w = 0; w < allowed_ways; ++w) {
    Line& line = base[w];
    if (!line.valid) return &line;
    if (victim == nullptr || line.last_use < victim->last_use) {
      victim = &line;
    }
  }
  return victim;
}

void SetAssociativeCache::ensure_owner(ThreadId owner) {
  RDA_CHECK(owner != kInvalidThread);
  if (owner >= owner_stats_.size()) {
    owner_stats_.resize(owner + 1);
    owner_lines_.resize(owner + 1, 0);
    partition_ways_.resize(owner + 1, 0);
  }
}

bool SetAssociativeCache::access(std::uint64_t address, ThreadId owner) {
  ++clock_;
  const std::uint64_t line_addr = address / config_.line_bytes;
  const std::uint64_t set = line_addr % sets_;
  const std::uint64_t tag = line_addr / sets_;

  std::uint64_t slot = set;
  if (!set_slot_.empty()) {
    slot = set_slot_[set];
    if (slot == kUnsampledSet) return true;  // not simulated
  }

  ensure_owner(owner);
  ++stats_.accesses;
  AssocCacheStats& os = owner_stats_[owner];
  ++os.accesses;

  if (Line* hit = find_line(slot, tag)) {
    hit->last_use = clock_;
    ++stats_.hits;
    ++os.hits;
    return true;
  }

  ++stats_.misses;
  ++os.misses;

  const std::uint32_t part = partition_ways_[owner];
  const std::uint32_t allowed = part == 0 ? ways_ : std::min(part, ways_);

  Line* victim = pick_victim(slot, allowed);
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->owner < owner_lines_.size() &&
        owner_lines_[victim->owner] > 0) {
      --owner_lines_[victim->owner];
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->owner = owner;
  victim->last_use = clock_;
  ++owner_lines_[owner];
  return false;
}

void SetAssociativeCache::set_partition(ThreadId owner,
                                        std::uint32_t allowed_ways) {
  RDA_CHECK(allowed_ways > 0);
  ensure_owner(owner);
  partition_ways_[owner] = std::min(allowed_ways, ways_);
}

void SetAssociativeCache::clear_partition(ThreadId owner) {
  if (owner < partition_ways_.size()) partition_ways_[owner] = 0;
}

void SetAssociativeCache::flush_owner(ThreadId owner) {
  for (Line& line : lines_) {
    if (line.valid && line.owner == owner) {
      line.valid = false;
      ++stats_.invalidations;
    }
  }
  if (owner < owner_lines_.size()) {
    owner_stats_[owner].invalidations += owner_lines_[owner];
    owner_lines_[owner] = 0;
  }
}

std::uint64_t SetAssociativeCache::occupancy_lines(ThreadId owner) const {
  const std::uint64_t raw =
      owner < owner_lines_.size() ? owner_lines_[owner] : 0;
  return scaled(raw);
}

std::uint64_t SetAssociativeCache::occupancy_bytes(ThreadId owner) const {
  return occupancy_lines(owner) * config_.line_bytes;
}

AssocCacheStats SetAssociativeCache::owner_stats(ThreadId owner) const {
  return scaled(owner < owner_stats_.size() ? owner_stats_[owner]
                                            : AssocCacheStats{});
}

std::uint64_t SetAssociativeCache::scaled(std::uint64_t raw) const {
  if (sampled_sets_ == sets_) return raw;
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(raw) * sample_factor_));
}

AssocCacheStats SetAssociativeCache::scaled(
    const AssocCacheStats& raw) const {
  if (sampled_sets_ == sets_) return raw;
  AssocCacheStats s;
  s.accesses = scaled(raw.accesses);
  s.hits = scaled(raw.hits);
  s.misses = scaled(raw.misses);
  s.evictions = scaled(raw.evictions);
  s.invalidations = scaled(raw.invalidations);
  return s;
}

}  // namespace rda::sim
