// Native miniature of the Table-2 BLAS workloads: real threads, real BLAS
// kernels, real userspace gate — no simulator. On a many-core machine with
// a shared LLC this shows the paper's effect directly; on a small CI
// container it validates the full native stack and prints gate behaviour.
#include <cstdio>
#include <cstring>

#include "runtime/affinity.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/native_runner.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  const int threads = std::min(8, 2 * rt::online_cpus());
  const double llc = static_cast<double>(
      rt::detect_llc_bytes().value_or(util::MB(15)));
  std::printf("=== native Table-2 analogue: %d worker threads, %.1f MB LLC "
              "===\n\n",
              threads, util::bytes_to_mb(static_cast<std::uint64_t>(llc)));

  struct PolicyRow {
    const char* name;
    std::optional<core::PolicyKind> policy;
  };
  const PolicyRow policies[] = {
      {"Linux default", std::nullopt},
      {"RDA:Strict", core::PolicyKind::kStrict},
      {"RDA:Compromise(x=2)", core::PolicyKind::kCompromise},
  };

  for (int level = 1; level <= 3; ++level) {
    util::Table table({"policy", "seconds", "GFLOPS", "gate waits",
                       "wait time [ms]"});
    for (const PolicyRow& p : policies) {
      workload::NativeRunConfig cfg;
      cfg.policy = p.policy;
      cfg.llc_capacity_bytes = llc;
      cfg.threads = threads;
      cfg.repeats = quick ? 2 : 8;
      cfg.size_scale = quick ? 0.5 : 1.0;
      const workload::NativeRunResult r =
          workload::run_native_blas(level, cfg);
      table.begin_row()
          .add_cell(p.name)
          .add_cell(r.seconds, 3)
          .add_cell(r.gflops(), 2)
          .add_cell(r.gate_waits)
          .add_cell(1e3 * r.gate_wait_seconds, 1);
    }
    std::printf("BLAS-%d\n%s\n", level, table.render().c_str());
  }
  std::printf("(co-scheduling effects require a multi-core host; the gate "
              "path itself — declarations, admissions, waits — is fully "
              "real here)\n");
  return 0;
}
