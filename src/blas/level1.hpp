// BLAS level-1 kernels (vector–vector): daxpy, dcopy, dscal, dswap.
//
// These are the paper's BLAS-1 workload (Table 2): streaming operations with
// minimal cache reuse. Implementations are straightforward, contiguous, and
// auto-vectorizable.
#pragma once

#include <cstddef>
#include <span>

namespace rda::blas {

/// y := alpha*x + y. Requires x.size() == y.size().
void daxpy(double alpha, std::span<const double> x, std::span<double> y);

/// y := x. Requires x.size() == y.size().
void dcopy(std::span<const double> x, std::span<double> y);

/// x := alpha*x.
void dscal(double alpha, std::span<double> x);

/// x <-> y. Requires x.size() == y.size().
void dswap(std::span<double> x, std::span<double> y);

/// Flop counts for the energy/performance accounting.
inline double daxpy_flops(std::size_t n) { return 2.0 * static_cast<double>(n); }
inline double dscal_flops(std::size_t n) { return static_cast<double>(n); }

}  // namespace rda::blas
