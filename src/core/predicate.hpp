// Scheduling predicate (§3.3, Algorithm 1).
//
//   function TrySchedule(pp, resource)
//     remaining <- resource.capacity - resource.usage
//     outcome   <- remaining - pp.demand
//     runnable  <- apply_policy(outcome, resource)
//     if runnable then increment_load(pp.demand); schedule(get_process(pp))
//     else waitlist(pp)
//
// This class is the pure decision + load update; queueing the loser is the
// progress monitor's job.
#pragma once

#include "core/policy.hpp"
#include "core/registry.hpp"
#include "core/resource_monitor.hpp"

namespace rda::core {

class SchedulingPredicate {
 public:
  /// Non-owning references; both must outlive the predicate. Every resource
  /// kind gets `policy` as its bound and admission combines all-must-fit.
  SchedulingPredicate(const SchedulingPolicy& policy,
                      ResourceMonitor& resources)
      : resources_(&resources), combiner_(&default_combiner()) {
    policies_.fill(&policy);
  }

  /// Per-resource bounds + pluggable combiner. `policies` entries must be
  /// non-null and, like `combiner` and `resources`, outlive the predicate.
  SchedulingPredicate(const PolicyTable& policies,
                      const CombiningPolicy& combiner,
                      ResourceMonitor& resources)
      : policies_(policies), resources_(&resources), combiner_(&combiner) {}

  /// Algorithm 1, generalized to multi-resource periods: the combiner folds
  /// the per-resource verdicts into one decision and, on admit, charges the
  /// whole demand vector atomically (exact rollback on deny).
  ///
  /// For all-must-fit: apply_policy(remaining − demand) ⟺ usage + demand ≤
  /// admission_bound for every shipped policy (Strict: bound = capacity;
  /// Compromise: x·capacity; AlwaysAdmit: +inf), so the check-then-increment
  /// is expressed as an atomic budget acquisition on the period's stripe —
  /// the same code path whether the caller holds the slow-lane lock or is
  /// racing through the lock-free lane. The other combiners are slow-lane
  /// only (AdmissionCore::calm() gates them off the lock-free path).
  bool try_schedule(const PeriodRecord& pp) {
    return combiner_->try_schedule(pp.demands, pp.stripe, *resources_,
                                   policies_);
  }

  /// Vector decision only, no load change — used for group (thread-pool)
  /// checks, where the pool's summed per-resource demands are the vector.
  bool would_admit(const std::vector<ResourceDemand>& demands) const {
    return combiner_->would_admit(demands, *resources_, policies_);
  }

  /// Multi-resource decision only: the exact check try_schedule performs,
  /// without the load charge — used by wake strategies to enumerate fitting
  /// waitlist candidates before committing to one.
  bool would_admit(const PeriodRecord& pp) const {
    return combiner_->would_admit(pp.demands, *resources_, policies_);
  }

  const SchedulingPolicy& policy() const {
    return *policies_[static_cast<std::size_t>(ResourceKind::kLLC)];
  }
  const SchedulingPolicy& policy(ResourceKind kind) const {
    return *policies_[static_cast<std::size_t>(kind)];
  }
  const CombiningPolicy& combiner() const { return *combiner_; }

 private:
  PolicyTable policies_{};
  ResourceMonitor* resources_;
  const CombiningPolicy* combiner_;
};

}  // namespace rda::core
