#include "api/validate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/units.hpp"
#include "workload/table2.hpp"

namespace rda::api {
namespace {

using rda::util::MB;
using sim::ProgramBuilder;

TEST(Validate, CleanProgramPasses) {
  const auto program = ProgramBuilder()
                           .period("pp1", 1e9, MB(2), ReuseLevel::kHigh)
                           .plain("sync", 1e7, MB(0.1), ReuseLevel::kLow)
                           .period("pp2", 1e9, MB(3), ReuseLevel::kHigh)
                           .build();
  const auto issues = validate_program(program);
  EXPECT_TRUE(program_ok(issues));
  EXPECT_TRUE(issues.empty());
}

TEST(Validate, BlockingSyncInsidePeriodIsError) {
  auto program =
      ProgramBuilder().period("pp", 1e9, MB(2), ReuseLevel::kHigh).build();
  program.phases[0].contains_blocking_sync = true;  // §3.4 violation
  const auto issues = validate_program(program);
  EXPECT_FALSE(program_ok(issues));
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].severity, ValidationIssue::Severity::kError);
  EXPECT_NE(issues[0].message.find("synchronization"), std::string::npos);
}

TEST(Validate, BlockingSyncOutsidePeriodIsFine) {
  auto program = ProgramBuilder()
                     .plain("sync", 1e7, MB(0.1), ReuseLevel::kLow)
                     .barrier()
                     .build();
  program.phases[0].contains_blocking_sync = true;
  EXPECT_TRUE(program_ok(validate_program(program)));
}

TEST(Validate, NegativeFlopsIsError) {
  auto program =
      ProgramBuilder().plain("bad", 1.0, MB(1), ReuseLevel::kLow).build();
  program.phases[0].flops = -5.0;
  EXPECT_FALSE(program_ok(validate_program(program)));
}

TEST(Validate, ZeroDemandPeriodWarns) {
  const auto program =
      ProgramBuilder().period("pp", 1e9, 0, ReuseLevel::kHigh).build();
  const auto issues = validate_program(program);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].severity, ValidationIssue::Severity::kWarning);
  EXPECT_TRUE(program_ok(issues));  // warnings do not fail
}

TEST(Validate, OversizedWorkingSetWarnsAgainstCapacity) {
  const auto program =
      ProgramBuilder().period("pp", 1e9, MB(20), ReuseLevel::kHigh).build();
  ValidationOptions options;
  options.llc_capacity_bytes = MB(15);
  const auto issues = validate_program(program, options);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].severity, ValidationIssue::Severity::kWarning);
  EXPECT_NE(issues[0].message.find("exceeds LLC capacity"),
            std::string::npos);
  // Without a configured capacity the check is off.
  EXPECT_TRUE(validate_program(program).empty());
}

TEST(Validate, IssueIndexesPointAtPhases) {
  auto program = ProgramBuilder()
                     .plain("ok", 1e7, MB(1), ReuseLevel::kLow)
                     .period("bad", 1e9, MB(1), ReuseLevel::kHigh)
                     .build();
  program.phases[1].contains_blocking_sync = true;
  const auto issues = validate_program(program);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].phase_index, 1u);
}

TEST(Validate, Table2ProgramsAllValid) {
  // Every workload the benches run must pass validation.
  ValidationOptions options;
  options.llc_capacity_bytes = MB(15);
  // Raytrace's 5.1/5.2 MB periods fit; nothing should error.
  for (const auto& spec : workload::table2_workloads()) {
    for (int p = 0; p < std::min(spec.processes, 4); ++p) {
      const auto program = spec.program(p, 0);
      EXPECT_TRUE(program_ok(validate_program(program, options)))
          << spec.name;
    }
  }
}

}  // namespace
}  // namespace rda::api
