#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::trace {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, RoundTripRecordsAndNest) {
  const std::string path = temp_path("roundtrip.rdatrc");
  LoopNest nest;
  const LoopId outer = nest.add_loop("outer", 0x1000, 0x2000);
  nest.add_nested(outer, "inner", 0x1100, 0x1800);

  std::vector<TraceRecord> records = {
      {0xdeadbeef, RecordKind::kLoad},
      {0xcafef00d, RecordKind::kStore},
      {0x1400, RecordKind::kJump},
  };
  {
    TraceFileWriter writer(path, nest);
    for (const TraceRecord& r : records) writer.write(r);
    writer.finalize();
    EXPECT_EQ(writer.records_written(), 3u);
  }

  const TraceFile file = TraceFile::open(path);
  EXPECT_EQ(file.record_count(), 3u);
  ASSERT_EQ(file.nest().size(), 2u);
  EXPECT_EQ(file.nest().loop(0).name, "outer");
  EXPECT_EQ(file.nest().loop(1).name, "inner");
  EXPECT_EQ(file.nest().loop(1).parent, 0u);
  EXPECT_EQ(file.nest().loop(1).depth, 1);

  auto source = file.records();
  const auto read_back = drain(*source);
  ASSERT_EQ(read_back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(read_back[i].value, records[i].value) << i;
    EXPECT_EQ(read_back[i].kind, records[i].kind) << i;
  }
  std::remove(path.c_str());
}

TEST(TraceIo, LargeTraceStreamsThroughBuffer) {
  const std::string path = temp_path("large.rdatrc");
  LoopNest nest;
  nest.add_loop("l", 0x100, 0x200);
  RegionSpec spec;
  spec.base = 0;
  spec.size_bytes = util::MB(1);
  spec.pattern = Pattern::kRandomUniform;
  const std::uint64_t n = 200000;  // needs several reader refills
  {
    RegionAccessSource src(spec, n, 9);
    TraceFileWriter writer(path, nest);
    writer.write_all(src);
    EXPECT_EQ(writer.records_written(), n);
  }
  const TraceFile file = TraceFile::open(path);
  auto source = file.records();
  EXPECT_EQ(count_records(*source), n);
  // Bitwise identical to a regenerated stream (same seed).
  RegionAccessSource regen(spec, n, 9);
  auto reread = file.records();
  TraceRecord a, b;
  while (regen.next(a)) {
    ASSERT_TRUE(reread->next(b));
    ASSERT_EQ(a.value, b.value);
    ASSERT_EQ(a.kind, b.kind);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, WriterFlushesAcrossChunkBoundary) {
  // The writer batches ~256k records per fwrite; a trace crossing that
  // boundary (plus a partial tail) must survive the flush/finalize dance
  // bit-for-bit.
  const std::string path = temp_path("chunked.rdatrc");
  LoopNest nest;
  const std::uint64_t n = 300001;
  {
    TraceFileWriter writer(path, nest);
    for (std::uint64_t i = 0; i < n; ++i) {
      writer.write({i, i % 3 == 0 ? RecordKind::kStore : RecordKind::kLoad});
    }
    EXPECT_EQ(writer.records_written(), n);
  }
  const TraceFile file = TraceFile::open(path);
  ASSERT_EQ(file.record_count(), n);
  auto source = file.records();
  TraceRecord rec;
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(source->next(rec));
    ASSERT_EQ(rec.value, i);
    ASSERT_EQ(rec.kind,
              i % 3 == 0 ? RecordKind::kStore : RecordKind::kLoad);
  }
  EXPECT_FALSE(source->next(rec));
  std::remove(path.c_str());
}

TEST(TraceIo, MultiplePassesOverSameFile) {
  const std::string path = temp_path("multipass.rdatrc");
  LoopNest nest;
  {
    TraceFileWriter writer(path, nest);
    writer.write({1, RecordKind::kLoad});
    writer.write({2, RecordKind::kLoad});
  }
  const TraceFile file = TraceFile::open(path);
  auto first = file.records();
  auto second = file.records();
  EXPECT_EQ(count_records(*first), 2u);
  EXPECT_EQ(count_records(*second), 2u);  // independent handles
  std::remove(path.c_str());
}

TEST(TraceIo, DestructorFinalizes) {
  const std::string path = temp_path("dtor.rdatrc");
  LoopNest nest;
  {
    TraceFileWriter writer(path, nest);
    writer.write({7, RecordKind::kStore});
    // no explicit finalize
  }
  EXPECT_EQ(TraceFile::open(path).record_count(), 1u);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsGarbageFile) {
  const std::string path = temp_path("garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("not a trace", 1, 11, f);
  std::fclose(f);
  EXPECT_THROW(TraceFile::open(path), util::CheckFailure);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW(TraceFile::open("/nonexistent/zzz.rdatrc"),
               util::CheckFailure);
}

}  // namespace
}  // namespace rda::trace
