// Per-core runqueues with idle stealing vs the global queue.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "util/units.hpp"

namespace rda::sim {
namespace {

using rda::util::MB;

EngineConfig per_core_machine(int cores) {
  EngineConfig cfg;
  cfg.machine = MachineConfig();
  cfg.machine.cores = cores;
  cfg.machine.llc_bytes = MB(8);
  cfg.scheduler = SchedulerMode::kPerCoreQueues;
  return cfg;
}

PhaseProgram work(double flops) {
  return ProgramBuilder().plain("w", flops, MB(0.5), ReuseLevel::kHigh).build();
}

TEST(PerCoreQueues, BalancedLoadNeedsNoMigrations) {
  // 4 threads on 4 cores, round-robin homes: everyone runs at home.
  Engine engine(per_core_machine(4));
  for (int i = 0; i < 4; ++i) {
    engine.add_thread(engine.create_process(), work(2e8));
  }
  const SimResult result = engine.run();
  EXPECT_EQ(result.migrations, 0u);
  EXPECT_NEAR(result.total_flops, 8e8, 1.0);
}

TEST(PerCoreQueues, IdleCoresStealWork) {
  // 4 threads, all homed to core 0 (added to a 1-thread... we force the
  // imbalance with a 2-core machine and 2 threads whose homes collide by
  // construction order: homes are round-robin, so instead create imbalance
  // via different lengths: thread A long, thread B short on the other
  // core, then two more queued behind A's core).
  Engine engine(per_core_machine(2));
  const ProcessId p = engine.create_process();
  engine.add_thread(p, work(4e9));   // home 0
  engine.add_thread(p, work(2e8));   // home 1, finishes early
  engine.add_thread(p, work(4e9));   // home 0 — queued behind thread 0
  const SimResult result = engine.run();
  // Core 1 goes idle after its short thread and must steal thread 2.
  EXPECT_GE(result.migrations, 1u);
  EXPECT_NEAR(result.total_flops, 8.2e9, 10.0);
  // Stealing means the two long threads ran mostly in parallel.
  const double solo_seconds = 4e9 / 5.5e9;
  EXPECT_LT(result.makespan, 2.0 * solo_seconds);
}

TEST(PerCoreQueues, MigrationCostCharged) {
  EngineConfig cfg = per_core_machine(2);
  cfg.calib.migration_cost = 5e-3;  // enormous, visible in makespan
  Engine expensive(cfg);
  const ProcessId p1 = expensive.create_process();
  expensive.add_thread(p1, work(4e9));
  expensive.add_thread(p1, work(2e8));
  expensive.add_thread(p1, work(4e9));
  const SimResult costly = expensive.run();

  cfg.calib.migration_cost = 0.0;
  Engine free(cfg);
  const ProcessId p2 = free.create_process();
  free.add_thread(p2, work(4e9));
  free.add_thread(p2, work(2e8));
  free.add_thread(p2, work(4e9));
  const SimResult cheap = free.run();

  EXPECT_GT(costly.makespan, cheap.makespan);
}

TEST(PerCoreQueues, SameWorkAsGlobalQueue) {
  auto run = [](SchedulerMode mode) {
    EngineConfig cfg;
    cfg.machine = MachineConfig();
    cfg.machine.cores = 4;
    cfg.machine.llc_bytes = MB(8);
    cfg.scheduler = mode;
    Engine engine(cfg);
    for (int i = 0; i < 12; ++i) {
      engine.add_thread(engine.create_process(), ProgramBuilder()
                            .plain("w", 3e8, MB(0.4), ReuseLevel::kMedium)
                            .build());
    }
    return engine.run();
  };
  const SimResult global = run(SchedulerMode::kGlobalQueue);
  const SimResult per_core = run(SchedulerMode::kPerCoreQueues);
  EXPECT_NEAR(global.total_flops, per_core.total_flops, 1.0);
  // Same machine, same work: makespans within 15% of each other.
  EXPECT_NEAR(global.makespan, per_core.makespan, 0.15 * global.makespan);
}

TEST(PerCoreQueues, GateBlockedThreadsResumeOnHomeCore) {
  EngineConfig cfg = per_core_machine(2);
  Engine engine(cfg);

  class SerialGate : public PhaseGate {
   public:
    BeginResult on_phase_begin(ThreadId thread, ProcessId, const PhaseSpec&,
                               double) override {
      if (active_ != kInvalidThread) {
        parked_.push_back(thread);
        return {false, 0.0};
      }
      active_ = thread;
      return {true, 0.0};
    }
    EndResult on_phase_end(ThreadId, ProcessId, const PhaseSpec&,
                           const PhaseObservation&, double) override {
      active_ = kInvalidThread;
      if (!parked_.empty() && waker_) {
        const ThreadId next = parked_.front();
        parked_.erase(parked_.begin());
        active_ = next;
        waker_->wake(next);
      }
      return {0.0};
    }
    void attach(ThreadWaker& waker) override { waker_ = &waker; }

   private:
    ThreadId active_ = kInvalidThread;
    std::vector<ThreadId> parked_;
    ThreadWaker* waker_ = nullptr;
  };
  SerialGate gate;
  engine.set_gate(&gate);
  for (int i = 0; i < 4; ++i) {
    const ProcessId pid = engine.create_process();
    engine.add_thread(pid, ProgramBuilder()
                               .period("pp", 2e8, MB(1), ReuseLevel::kHigh)
                               .build());
  }
  const SimResult result = engine.run();
  EXPECT_NEAR(result.total_flops, 8e8, 1.0);
  EXPECT_EQ(result.gate_blocks, 3u);
}

}  // namespace
}  // namespace rda::sim
