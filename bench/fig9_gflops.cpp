// Reproduces paper Figure 9: performance in GFLOPS for each workload under
// the three scheduling policies.
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  std::cout << "=== Figure 9: performance, GFLOPS ===\n"
            << "(higher is better; paper Fig. 9)\n\n";
  const bench::FigureData data =
      bench::run_all_workloads(bench::quick_requested(argc, argv),
                               bench::jobs_requested(argc, argv));
  const bool csv = bench::csv_requested(argc, argv);

  bench::print_metric_table(data, "GFLOPS", 2, [](const exp::RunRow& row) {
    return row.gflops;
  }, csv);
  if (csv) return 0;

  util::Table speedups({"workload", "best RDA policy", "speedup vs Linux"});
  for (std::size_t i = 0; i < data.comparisons.size(); ++i) {
    const exp::PolicyComparison& cmp = data.comparisons[i];
    const exp::RunRow& best = cmp.best_rda_by_gflops();
    speedups.begin_row()
        .add_cell(data.specs[i].name)
        .add_cell(best.policy)
        .add_cell(cmp.speedup(best), 2);
  }
  std::cout << speedups.render()
            << "\n(paper: max 1.88x on Raytrace/Strict; low-reuse workloads "
               "at or below 1.0)\n";
  return 0;
}
