file(REMOVE_RECURSE
  "librda_predict.a"
)
