# Empty dependencies file for rda_sched_sim.
# This may be replaced when dependencies are built.
