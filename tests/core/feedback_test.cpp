// Counter-feedback demand correction (the related-work hybrid the paper
// flags as "a subject to explore in later work").
#include <gtest/gtest.h>

#include "core/feedback.hpp"
#include "core/rda_scheduler.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

using rda::util::MB;

FeedbackOptions enabled() {
  FeedbackOptions o;
  o.enable = true;
  o.min_samples = 2;
  o.decay = 0.5;  // fast adaptation for unit tests
  return o;
}

TEST(DemandCorrector, DisabledReturnsUnity) {
  DemandCorrector corrector;  // enable == false
  corrector.observe("pp", 100.0, 20.0, false);
  corrector.observe("pp", 100.0, 20.0, false);
  EXPECT_DOUBLE_EQ(corrector.correction("pp"), 1.0);
}

TEST(DemandCorrector, UnknownLabelReturnsUnity) {
  DemandCorrector corrector(enabled());
  EXPECT_DOUBLE_EQ(corrector.correction("never-seen"), 1.0);
}

TEST(DemandCorrector, UnderSampledReturnsUnity) {
  DemandCorrector corrector(enabled());
  corrector.observe("pp", 100.0, 20.0, false);
  EXPECT_DOUBLE_EQ(corrector.correction("pp"), 1.0);  // 1 < min_samples
}

TEST(DemandCorrector, OverDeclarationShrinksCorrection) {
  DemandCorrector corrector(enabled());
  // Declared 100, really uses 25, repeatedly and uncontended.
  for (int i = 0; i < 10; ++i) corrector.observe("pp", 100.0, 25.0, false);
  const double c = corrector.correction("pp");
  EXPECT_LT(c, 0.5);
  EXPECT_GE(c, 0.25);  // clamp floor
}

TEST(DemandCorrector, UnderDeclarationGrowsCorrection) {
  DemandCorrector corrector(enabled());
  for (int i = 0; i < 3; ++i) corrector.observe("pp", 100.0, 250.0, false);
  EXPECT_NEAR(corrector.correction("pp"), 2.5, 1e-9);
}

TEST(DemandCorrector, ContendedObservationsNeverShrink) {
  DemandCorrector corrector(enabled());
  corrector.observe("pp", 100.0, 100.0, false);
  corrector.observe("pp", 100.0, 100.0, false);
  const double before = corrector.correction("pp");
  // Contended runs show a low peak because the period COULD not grow; that
  // must not be treated as evidence of a smaller appetite.
  for (int i = 0; i < 10; ++i) corrector.observe("pp", 100.0, 10.0, true);
  EXPECT_GE(corrector.correction("pp"), before - 1e-9);
}

TEST(DemandCorrector, CorrectionClampedAbove) {
  DemandCorrector corrector(enabled());
  corrector.observe("pp", 100.0, 4000.0, false);
  corrector.observe("pp", 100.0, 4000.0, false);
  EXPECT_DOUBLE_EQ(corrector.correction("pp"), 4.0);  // max clamp
}

TEST(DemandCorrector, LabelsIndependent) {
  DemandCorrector corrector(enabled());
  for (int i = 0; i < 3; ++i) {
    corrector.observe("small", 100.0, 30.0, false);
    corrector.observe("big", 100.0, 200.0, false);
  }
  EXPECT_LT(corrector.correction("small"), 1.0);
  EXPECT_GT(corrector.correction("big"), 1.0);
  EXPECT_EQ(corrector.tracked_labels(), 2u);
}

TEST(DemandCorrector, InvalidOptionsRejected) {
  FeedbackOptions bad;
  bad.decay = 0.0;
  EXPECT_THROW(DemandCorrector{bad}, util::CheckFailure);
  FeedbackOptions inverted;
  inverted.min_correction = 2.0;
  inverted.max_correction = 1.0;
  EXPECT_THROW(DemandCorrector{inverted}, util::CheckFailure);
}

// End-to-end helper: N processes, each running the same period `repeats`
// times, with the declared working set possibly diverging from the true one.
double run_misdeclared(bool feedback, double true_mb, double declared_mb,
                       int procs, int repeats) {
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  sim::Engine engine(cfg);
  RdaOptions options;
  options.policy = PolicyKind::kStrict;
  options.feedback.enable = feedback;
  options.feedback.min_samples = 2;
  options.feedback.decay = 0.6;
  core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                          cfg.calib, options);
  engine.set_gate(&gate);
  for (int p = 0; p < procs; ++p) {
    const sim::ProcessId pid = engine.create_process();
    sim::ProgramBuilder b;
    for (int r = 0; r < repeats; ++r) {
      b.period("misdeclared", 1e9, MB(true_mb), ReuseLevel::kHigh)
          .declared(MB(declared_mb));
    }
    engine.add_thread(pid, b.build());
  }
  return engine.run().makespan;
}

// Eight over-declaring processes (claim 12 MB, truly use 2 MB). Plain
// strict scheduling serializes them (one 12 MB claim at a time); feedback
// learns the real appetite after two instances and restores concurrency.
TEST(Feedback, OverDeclarationRegainsConcurrency) {
  const double plain = run_misdeclared(false, 2.0, 12.0, 8, 6);
  const double corrected = run_misdeclared(true, 2.0, 12.0, 8, 6);
  EXPECT_LT(corrected, 0.6 * plain);
}

// Honest declarations: feedback must be (nearly) a no-op.
TEST(Feedback, HonestDeclarationsUnchanged) {
  const double plain = run_misdeclared(false, 2.0, 2.0, 8, 6);
  const double corrected = run_misdeclared(true, 2.0, 2.0, 8, 6);
  EXPECT_NEAR(corrected, plain, 0.1 * plain);
}

// Under-declaration (claim 1 MB, truly 6 MB): without feedback twelve 6 MB
// working sets thrash the 15 MB cache; feedback grows the charge and blocks
// the over-commitment. Throughput must not be worse with feedback.
TEST(Feedback, UnderDeclarationProtectsCache) {
  const double plain = run_misdeclared(false, 6.0, 1.0, 12, 6);
  const double corrected = run_misdeclared(true, 6.0, 1.0, 12, 6);
  EXPECT_LT(corrected, 1.05 * plain);
}

// Per-kind independence (vector demands): a label that over-declares its
// LLC working set but nails its DRAM bandwidth must get its LLC charge
// shrunk without the bandwidth charge moving — and vice versa. One state
// per (label, kind), not one shared ratio.
TEST(DemandCorrector, KindsCorrectIndependently) {
  DemandCorrector corrector(enabled());
  for (int i = 0; i < 10; ++i) {
    // LLC: declares 100, uses 25. Bandwidth: declares 100, uses 100.
    corrector.observe("pp", ResourceKind::kLLC, 100.0, 25.0, false);
    corrector.observe("pp", ResourceKind::kMemBandwidth, 100.0, 100.0,
                      false);
  }
  EXPECT_NEAR(corrector.correction("pp", ResourceKind::kLLC), 0.25, 1e-6);
  EXPECT_DOUBLE_EQ(corrector.correction("pp", ResourceKind::kMemBandwidth),
                   1.0);
  // Untouched kinds under the same label stay at unity (and under-sampled).
  EXPECT_DOUBLE_EQ(corrector.correction("pp", ResourceKind::kEnergyBudget),
                   1.0);

  // The mirror image: bandwidth under-declared, LLC honest.
  DemandCorrector mirror(enabled());
  for (int i = 0; i < 3; ++i) {
    mirror.observe("bw", ResourceKind::kLLC, 100.0, 100.0, false);
    mirror.observe("bw", ResourceKind::kMemBandwidth, 100.0, 250.0, false);
  }
  EXPECT_DOUBLE_EQ(mirror.correction("bw", ResourceKind::kLLC), 1.0);
  EXPECT_NEAR(mirror.correction("bw", ResourceKind::kMemBandwidth), 2.5,
              1e-9);
}

}  // namespace
}  // namespace rda::core
