// Ablation: baseline-scheduler timeslice sensitivity.
//
// The interference the paper attacks comes from time-multiplexed working
// sets evicting each other. A longer timeslice amortizes cache refills
// (fewer, longer residencies); a shorter one approaches round-robin
// thrashing (paper Fig. 1). RDA's advantage should shrink as the quantum
// grows but remain positive while working sets overlap in the LLC.
#include <cstring>
#include <iostream>

#include "exp/harness.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  const bool quick = !(argc > 1 && std::strcmp(argv[1], "--full") == 0);
  std::cout << "=== Ablation: CFS timeslice vs RDA benefit (BLAS-3) ===\n\n";

  const auto specs = workload::table2_workloads();
  const workload::WorkloadSpec spec =
      quick ? workload::scale_workload(
                  workload::find_workload(specs, "BLAS-3"), 0.25, 2)
            : workload::find_workload(specs, "BLAS-3");

  // Matrix: 1 workload x (6 quanta x {Linux, Strict}) = 12 cells.
  const std::vector<double> quanta_ms = {1.0, 3.0, 6.0, 12.0, 24.0, 48.0};
  std::vector<exp::RunConfig> configs;
  for (const double quantum_ms : quanta_ms) {
    sim::EngineConfig engine;
    engine.machine = sim::MachineConfig::e5_2420();
    engine.calib.quantum = util::ms(quantum_ms);
    exp::RunConfig cfg;
    cfg.engine = engine;
    cfg.policy = core::PolicyKind::kLinuxDefault;
    configs.push_back(cfg);
    cfg.policy = core::PolicyKind::kStrict;
    configs.push_back(cfg);
  }
  const std::vector<exp::RunRow> rows =
      exp::run_matrix({spec}, configs, exp::parse_jobs(argc, argv));

  util::Table table({"quantum [ms]", "Linux GFLOPS", "Strict GFLOPS",
                     "speedup", "Linux J", "Strict J"});
  for (std::size_t q = 0; q < quanta_ms.size(); ++q) {
    const exp::RunRow& base = rows[2 * q];
    const exp::RunRow& strict = rows[2 * q + 1];
    table.begin_row()
        .add_cell(quanta_ms[q], 1)
        .add_cell(base.gflops, 2)
        .add_cell(strict.gflops, 2)
        .add_cell(strict.gflops / base.gflops, 2)
        .add_cell(base.system_joules, 0)
        .add_cell(strict.system_joules, 0);
  }
  std::cout << table.render()
            << "\n(RDA:Strict is timeslice-insensitive: admitted periods own "
               "their cache share regardless of preemption frequency)\n";
  return 0;
}
