// Shard-accounting invariants of the sharded admission core: the id/shard
// mapping contracts, the sharded registry/waitlist bookkeeping, and —
// at quiescence — the agreement between the striped lock-free counters and
// the registry ground truth that AdmissionCore::audit() formalizes.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include "core/admission.hpp"
#include "core/sharding.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

using util::MB;

TEST(Sharding, PeriodIdsNameTheirIssuingShard) {
  ShardedRegistry registry;
  for (sim::ThreadId t = 1; t <= 200; ++t) {
    PeriodRecord record;
    record.thread = t;
    record.process = static_cast<sim::ProcessId>(t);
    record.demands = {{ResourceKind::kLLC, 1.0}};
    const PeriodId id = registry.insert(std::move(record));
    // The id's residue class IS the shard: no shared counter consulted.
    EXPECT_EQ(shard_of_period(id), shard_of_thread(t))
        << "thread " << t << " period " << id;
    // The record remembers the budget stripe its admission must charge.
    const PeriodRecord* found = registry.find(id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->stripe, shard_of_period(id));
  }
  EXPECT_EQ(registry.active_count(), 200u);
}

TEST(Sharding, IdsAreUniqueAndStridedPerShard) {
  ShardedRegistry registry;
  std::set<PeriodId> seen;
  std::array<PeriodId, kNumShards> last{};
  for (sim::ThreadId t = 1; t <= 500; ++t) {
    PeriodRecord record;
    record.thread = t;
    record.demands = {{ResourceKind::kLLC, 1.0}};
    const PeriodId id = registry.insert(std::move(record));
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    const std::uint32_t shard = shard_of_period(id);
    if (last[shard] != kInvalidPeriod) {
      // Within one shard ids grow by exactly the shard stride.
      EXPECT_EQ(id, last[shard] + kNumShards);
    } else {
      EXPECT_EQ(id, static_cast<PeriodId>(shard + 1));
    }
    last[shard] = id;
    registry.remove(id);  // frees the thread for its next period
  }
}

TEST(Sharding, TakeIfCalmClaimsOnlyCalmRecords) {
  ShardedRegistry registry;
  PeriodRecord parked;
  parked.thread = 1;
  parked.demands = {{ResourceKind::kLLC, 1.0}};
  const PeriodId parked_id = registry.insert(std::move(parked));

  PeriodRecord oversub;
  oversub.thread = 2;
  oversub.demands = {{ResourceKind::kLLC, 1.0}};
  oversub.admitted = true;
  oversub.oversub = true;
  const PeriodId oversub_id = registry.insert(std::move(oversub));

  PeriodRecord calm;
  calm.thread = 3;
  calm.demands = {{ResourceKind::kLLC, 1.0}};
  calm.admitted = true;
  const PeriodId calm_id = registry.insert(std::move(calm));

  // Waitlisted and force-oversubscribed records must route to the slow
  // lane; only the plain admitted record may be claimed lock-free.
  EXPECT_FALSE(registry.take_if_calm(parked_id).has_value());
  EXPECT_FALSE(registry.take_if_calm(oversub_id).has_value());
  const auto claimed = registry.take_if_calm(calm_id);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->id, calm_id);
  // The claim removed it: a second claim (double pp_end) finds nothing.
  EXPECT_FALSE(registry.take_if_calm(calm_id).has_value());
  EXPECT_EQ(registry.active_count(), 2u);
}

TEST(Sharding, WaitlistCounterTracksContentsAcrossShards) {
  ShardedWaitlist waitlist;
  util::Rng rng(7);
  std::uint64_t next_period = 1;
  std::size_t expected = 0;
  for (int round = 0; round < 200; ++round) {
    if (expected == 0 || rng.next_double() < 0.6) {
      Waitlist::Entry entry;
      entry.period = next_period++;
      entry.thread = static_cast<sim::ThreadId>(1 + rng.next_below(64));
      entry.process = static_cast<sim::ProcessId>(entry.thread);
      waitlist.push(entry);
      ++expected;
    } else {
      waitlist.remove_at(rng.next_below(expected));
      --expected;
    }
    // The Dekker flag the lock-free lane reads must equal the merged
    // view's true size after every mutation.
    ASSERT_EQ(waitlist.size(), expected);
    ASSERT_EQ(waitlist.entries().size(), expected);
    // The merged view is in strict arrival order.
    std::uint64_t prev_seq = 0;
    for (const Waitlist::Entry& e : waitlist.entries()) {
      ASSERT_GT(e.seq, prev_seq);
      prev_seq = e.seq;
    }
  }
}

TEST(Sharding, RestoreReinsertsAtOriginalFifoPosition) {
  ShardedWaitlist waitlist;
  for (std::uint64_t p = 1; p <= 8; ++p) {
    Waitlist::Entry entry;
    entry.period = p;
    entry.thread = static_cast<sim::ThreadId>(p);
    waitlist.push(entry);
  }
  Waitlist::Entry taken = waitlist.remove_at(3);
  EXPECT_EQ(waitlist.size(), 7u);
  waitlist.restore(taken);
  ASSERT_EQ(waitlist.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(waitlist.entries()[i].period, i + 1) << "index " << i;
  }
}

TEST(Sharding, StripedBudgetConservedUnderRandomCharges) {
  ResourceMonitor resources;
  const double capacity = static_cast<double>(MB(16));
  resources.set_capacity(ResourceKind::kLLC, capacity);
  resources.set_admission_bound(ResourceKind::kLLC, capacity);

  util::Rng rng(11);
  // Ground-truth mirror of every charge the monitor accepted.
  std::vector<std::pair<double, std::uint32_t>> held;
  double ground = 0.0;
  double oversub_ground = 0.0;
  for (int round = 0; round < 2000; ++round) {
    const auto stripe = static_cast<std::uint32_t>(
        rng.next_below(kNumShards));
    const double roll = rng.next_double();
    if (roll < 0.5) {
      const double demand = static_cast<double>(MB(1)) * rng.next_double();
      if (resources.try_acquire(ResourceKind::kLLC, demand, stripe)) {
        held.push_back({demand, stripe});
        ground += demand;
      }
    } else if (roll < 0.6) {
      // Forced charge (watchdog rung 2): always booked, may overdraft.
      const double demand = static_cast<double>(MB(2)) * rng.next_double();
      resources.increment_load(ResourceKind::kLLC, demand, stripe);
      resources.add_oversubscribed(ResourceKind::kLLC, demand);
      held.push_back({demand, stripe});
      ground += demand;
      oversub_ground += demand;
    } else if (!held.empty()) {
      const std::size_t pick = rng.next_below(held.size());
      const auto [demand, at] = held[pick];
      resources.decrement_load(ResourceKind::kLLC, demand, at);
      ground -= demand;
      held[pick] = held.back();
      held.pop_back();
    }
    // Striped usage always sums to the ground truth...
    ASSERT_NEAR(resources.usage(ResourceKind::kLLC), ground, 1.0);
    // ...and the budget identity holds with the overdraft term:
    //   Σ usage + Σ free − overdraft == admission_bound.
    const double budget = resources.usage(ResourceKind::kLLC) +
                          resources.total_free(ResourceKind::kLLC) -
                          resources.overdraft(ResourceKind::kLLC);
    ASSERT_NEAR(budget, capacity, 1.0) << "round " << round;
  }
  for (const auto& [demand, at] : held) {
    resources.decrement_load(ResourceKind::kLLC, demand, at);
  }
  resources.remove_oversubscribed(ResourceKind::kLLC, oversub_ground);
  EXPECT_TRUE(resources.effectively_free(ResourceKind::kLLC));
  EXPECT_NEAR(resources.oversubscribed(ResourceKind::kLLC), 0.0, 1e-6);
  EXPECT_NEAR(resources.overdraft(ResourceKind::kLLC), 0.0, 1.0);
}

TEST(Sharding, CoreAuditHoldsThroughRandomSerializedLifecycle) {
  AdmissionConfig config;
  config.llc_capacity_bytes = static_cast<double>(MB(15));
  config.policy = PolicyKind::kCompromise;
  config.fast_path = true;
  AdmissionCore core(config);

  util::Rng rng(13);
  struct Active {
    sim::ThreadId thread;
    PeriodId id;
  };
  std::vector<Active> admitted;
  std::vector<Active> parked;
  double now = 0.0;
  sim::ThreadId next_thread = 1;
  for (int round = 0; round < 400; ++round) {
    now += 1.0;
    const double roll = rng.next_double();
    if (roll < 0.5) {
      AdmitRequest request;
      request.thread = next_thread++;
      request.process = static_cast<sim::ProcessId>(request.thread);
      request.demands = {{ResourceKind::kLLC,
                          static_cast<double>(MB(1 + rng.next_below(7)))}};
      request.reuse = ReuseLevel::kHigh;
      const AdmitTicket ticket = core.admit(std::move(request), now);
      (ticket.admitted ? admitted : parked)
          .push_back({static_cast<sim::ThreadId>(next_thread - 1), ticket.id});
    } else if (roll < 0.85 && !admitted.empty()) {
      const std::size_t pick = rng.next_below(admitted.size());
      core.release(admitted[pick].id, {}, now);
      admitted[pick] = admitted.back();
      admitted.pop_back();
      // The release may have granted parked periods; reclassify.
      for (std::size_t i = 0; i < parked.size();) {
        if (core.is_admitted(parked[i].id)) {
          admitted.push_back(parked[i]);
          parked[i] = parked.back();
          parked.pop_back();
        } else {
          ++i;
        }
      }
    } else if (!parked.empty()) {
      const std::size_t pick = rng.next_below(parked.size());
      // A parked period may have been admitted by an earlier release.
      if (core.is_admitted(parked[pick].id)) {
        admitted.push_back(parked[pick]);
      } else {
        EXPECT_TRUE(core.withdraw(parked[pick].id, now));
      }
      parked[pick] = parked.back();
      parked.pop_back();
    }
    const AdmissionCore::AuditReport audit = core.audit();
    ASSERT_TRUE(audit.ok) << "round " << round << ": " << audit.detail;
  }
  // Drain everything; the audit and the free-pool must both come home.
  while (!admitted.empty() || !parked.empty()) {
    now += 1.0;
    if (!admitted.empty()) {
      core.release(admitted.back().id, {}, now);
      admitted.pop_back();
    } else {
      if (core.is_admitted(parked.back().id)) {
        admitted.push_back(parked.back());
      } else {
        EXPECT_TRUE(core.withdraw(parked.back().id, now));
      }
      parked.pop_back();
    }
    for (std::size_t i = 0; i < parked.size();) {
      if (core.is_admitted(parked[i].id)) {
        admitted.push_back(parked[i]);
        parked[i] = parked.back();
        parked.pop_back();
      } else {
        ++i;
      }
    }
  }
  const AdmissionCore::AuditReport final_audit = core.audit();
  EXPECT_TRUE(final_audit.ok) << final_audit.detail;
  EXPECT_TRUE(core.resources().effectively_free(ResourceKind::kLLC));
  EXPECT_EQ(core.monitor().registry().active_count(), 0u);
  EXPECT_TRUE(core.monitor().waitlist().empty());
}

}  // namespace
}  // namespace rda::core
