file(REMOVE_RECURSE
  "librda_api.a"
)
