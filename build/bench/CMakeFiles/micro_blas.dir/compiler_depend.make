# Empty compiler generated dependencies file for micro_blas.
# This may be replaced when dependencies are built.
