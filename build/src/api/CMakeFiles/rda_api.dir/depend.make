# Empty dependencies file for rda_api.
# This may be replaced when dependencies are built.
