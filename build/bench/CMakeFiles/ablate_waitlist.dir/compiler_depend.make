# Empty compiler generated dependencies file for ablate_waitlist.
# This may be replaced when dependencies are built.
