// AdmissionCore — the one transactional admit/withdraw/release engine.
//
// Every substrate that gates progress periods (the discrete-event simulator
// via core::RdaScheduler, real threads via rt::AdmissionGate, and the
// cluster layer's per-node gates) used to re-implement the same pipeline:
// demand correction, §6 streaming partitioning, the Fig. 11 cached-decision
// fast path, registry + predicate + waitlist bookkeeping. AdmissionCore owns
// that pipeline once; the substrates shrink to adapters that translate their
// wake mechanism (sim event injection, condvar notify) into the core's
// Waker callback and their notion of time into `now` seconds.
//
// Threading contract: the core is EXTERNALLY synchronized. It takes no lock
// of its own — the simulator is single-threaded and the native gate already
// serializes every call under one mutex, so an internal lock would only
// double the cost. Callers must not interleave calls from two threads
// without holding the same exclusion. The Waker is invoked synchronously
// from inside admit/withdraw/release, i.e. while the caller's lock is held:
// it must be cheap and must NOT re-enter the core.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/feedback.hpp"
#include "core/policy.hpp"
#include "core/predicate.hpp"
#include "core/progress_monitor.hpp"
#include "core/resource_monitor.hpp"
#include "fault/fault.hpp"
#include "obs/sink.hpp"

namespace rda::core {

/// §6 future-work extension: cache partitioning for streaming periods.
/// "If an application whose working set size is larger than the LLC is
///  scheduled (e.g., streaming applications), we can partition the cache and
///  give this application only a small portion ... because it would fetch
///  most data from main memory regardless."
struct PartitionOptions {
  bool enable = false;
  /// Fraction of LLC capacity granted to a larger-than-LLC period. The
  /// period is admitted with this reduced charge and confined to it, so
  /// normal periods co-run instead of waiting behind it.
  double streaming_fraction = 0.10;
};

struct AdmissionConfig {
  /// LLC capacity the admission decisions are made against (bytes).
  double llc_capacity_bytes = 15360.0 * 1024.0;  // paper Table 1 default
  /// Multi-resource extension: when > 0, DRAM bandwidth (bytes/second)
  /// becomes a second gated resource.
  double bandwidth_capacity = 0.0;
  PolicyKind policy = PolicyKind::kStrict;
  /// Oversubscription factor x for RDA:Compromise (paper uses 2).
  double oversubscription = 2.0;
  /// Enable the cached-decision fast path (Fig. 11 second series).
  bool fast_path = false;
  PartitionOptions partitioning{};
  /// Counter-feedback extension: correct declared demands from observed
  /// per-period hardware counters.
  FeedbackOptions feedback{};
  MonitorOptions monitor{};
  /// Admission-lifecycle event sink (non-owning; nullptr = tracing off).
  obs::TraceSink* trace_sink = nullptr;
  /// Fault injection (non-owning; nullptr = off). The core itself consults
  /// only the kRelease hook (corrupted counter observations); the substrates
  /// consult the lifecycle hooks around their own admit/block/wake sites.
  fault::FaultInjector* fault_injector = nullptr;
};

/// One pp_begin, substrate-neutral. The first demand is the primary one;
/// when it targets the LLC it is reshaped by counter feedback and §6
/// partitioning before admission.
struct AdmitRequest {
  sim::ThreadId thread = sim::kInvalidThread;
  sim::ProcessId process = sim::kInvalidProcess;
  std::vector<ResourceDemand> demands;
  ReuseLevel reuse = ReuseLevel::kLow;
  std::string label;
};

/// Outcome of admit(). `admitted == false` means the period is parked on
/// the waitlist; the caller must either sleep until the Waker fires for its
/// thread (the grant) or withdraw() the request.
struct AdmitTicket {
  PeriodId id = kInvalidPeriod;
  bool admitted = false;
  bool forced = false;     ///< admitted via the liveness override
  bool fast_path = false;  ///< decision served from the thread cache
  /// Non-zero when §6 partitioning capped the period's LLC occupancy.
  double occupancy_cap = 0.0;
};

/// Observed hardware counters of a completed period, fed back into the
/// demand corrector. `has_counters == false` (the default) skips feedback —
/// the native runtime has no per-period counter isolation by default.
struct ReleaseObservation {
  double peak_occupancy = 0.0;  ///< bytes actually resident at peak
  bool cache_contended = false;
  bool has_counters = false;
};

/// Outcome of release().
struct ReleaseTicket {
  bool fast_path = false;  ///< release needed no full "kernel entry"
  PeriodRecord record;     ///< the closed period
};

class AdmissionCore {
 public:
  /// The kernel wake event, abstracted: called once per period admitted off
  /// the waitlist, with the thread that parked it. Invoked while the
  /// caller's exclusion is held — must not re-enter the core.
  using Waker = std::function<void(sim::ThreadId)>;

  explicit AdmissionCore(AdmissionConfig config = {});

  AdmissionCore(const AdmissionCore&) = delete;
  AdmissionCore& operator=(const AdmissionCore&) = delete;

  void set_waker(Waker waker) { monitor_.set_waker(std::move(waker)); }
  void set_trace_sink(obs::TraceSink* sink) { monitor_.set_trace_sink(sink); }
  void set_wake_strategy(std::unique_ptr<WakeStrategy> strategy) {
    monitor_.set_wake_strategy(std::move(strategy));
  }

  /// Declares a process as a task-pool (§3.4 group pause semantics).
  void mark_pool(sim::ProcessId process) { monitor_.mark_pool(process); }

  /// pp_begin. Applies feedback correction and §6 partitioning to the
  /// primary LLC demand, consults the fast-path cache, then runs the full
  /// predicate pipeline. Throws util::CheckFailure on a nested begin from
  /// the same thread (before any stats or trace mutation).
  AdmitTicket admit(AdmitRequest request, double now);

  /// Withdraws a request that is still waitlisted (timeout / try_begin /
  /// shutdown). Returns false — withdrawing NOTHING — when the period was
  /// already admitted (the grant raced the timeout; the caller must consume
  /// it and eventually release()). Throws on an unknown id.
  bool withdraw(PeriodId id, double now);

  /// pp_end. Feeds observed counters to the demand corrector, releases the
  /// period's load and rescans the waitlist (invoking the Waker for every
  /// admission). Throws on an unknown id or a never-admitted period.
  ReleaseTicket release(PeriodId id, const ReleaseObservation& observed,
                        double now);

  /// Active (admitted OR waitlisted) period of a thread, if any.
  std::optional<PeriodId> active_for_thread(sim::ThreadId thread) const {
    return monitor_.registry().active_for_thread(thread);
  }

  /// --- Self-healing lifecycle ---------------------------------------------

  /// Reaps whatever period `thread` left behind (thread-exit detection /
  /// task teardown): an admitted orphan's load is returned and waiters are
  /// rescanned; a waitlisted orphan is evicted. See ProgressMonitor.
  ProgressMonitor::ReapOutcome reap(sim::ThreadId thread, double now,
                                    bool remember_waiter = false) {
    cache_.erase(thread);
    return monitor_.reap_thread(thread, now, remember_waiter);
  }

  /// Lease-based reclamation: reaps every period whose lease is more than
  /// `max_epoch_age` advance_epoch() calls stale. heartbeat() refreshes a
  /// live thread's lease.
  std::size_t sweep(std::uint64_t max_epoch_age, double now,
                    bool remember_waiters = false) {
    const std::size_t reaped =
        monitor_.sweep(max_epoch_age, now, remember_waiters);
    if (reaped > 0) cache_.clear();
    return reaped;
  }
  void heartbeat(sim::ThreadId thread) { monitor_.heartbeat(thread); }
  void advance_epoch() { monitor_.advance_epoch(); }

  /// Time-triggered starvation-watchdog pass (the round trigger runs inside
  /// every rescan). Returns true when a waiter moved a degradation rung.
  bool watchdog_tick(double now) { return monitor_.watchdog_tick(now); }

  /// Stall-triggered escalation: the substrate proved nothing can progress,
  /// so the head-most unexhausted waiter moves a rung immediately.
  bool watchdog_stalled(double now) { return monitor_.watchdog_stalled(now); }

  /// Post-wait state probes for the substrates: a granted period shows as
  /// admitted; a watchdog-rejected or reaped-while-waiting one never gets a
  /// Waker grant and must be discovered (and consumed) through these.
  bool is_admitted(PeriodId id) const { return monitor_.is_admitted(id); }
  bool is_rejected(PeriodId id) const { return monitor_.is_rejected(id); }
  bool take_rejection(PeriodId id) { return monitor_.take_rejection(id); }
  std::optional<PeriodId> take_rejection_for_thread(sim::ThreadId thread) {
    return monitor_.take_rejection_for_thread(thread);
  }
  std::vector<sim::ThreadId> rejected_threads() const {
    return monitor_.rejected_threads();
  }
  bool is_reclaimed(PeriodId id) const { return monitor_.is_reclaimed(id); }
  bool take_reclaimed(PeriodId id) { return monitor_.take_reclaimed(id); }

  const AdmissionConfig& config() const { return config_; }
  const MonitorStats& stats() const { return monitor_.stats(); }
  std::uint64_t fast_path_hits() const { return fast_path_hits_; }
  std::uint64_t partitioned_periods() const { return partitioned_periods_; }
  ResourceMonitor& resources() { return resources_; }
  const ResourceMonitor& resources() const { return resources_; }
  const ProgressMonitor& monitor() const { return monitor_; }
  const SchedulingPolicy& policy() const { return *policy_; }
  const DemandCorrector& corrector() const { return corrector_; }

 private:
  struct ThreadCache {
    bool valid = false;
    /// Post-transformation demands of the last admitted request.
    std::vector<ResourceDemand> demands;
    std::uint64_t version = 0;  ///< load-table version at our last call
  };

  bool fast_path_usable(sim::ThreadId thread, sim::ProcessId process,
                        const std::vector<ResourceDemand>& demands) const;

  AdmissionConfig config_;
  std::unique_ptr<SchedulingPolicy> policy_;
  ResourceMonitor resources_;
  SchedulingPredicate predicate_;
  ProgressMonitor monitor_;
  DemandCorrector corrector_;

  std::unordered_map<sim::ThreadId, ThreadCache> cache_;
  std::uint64_t fast_path_hits_ = 0;
  std::uint64_t partitioned_periods_ = 0;
};

}  // namespace rda::core
