#include "core/sharding.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::core {

ShardedRegistry::ShardedRegistry() {
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    shards_[s].reg = PeriodRegistry(s + 1, kNumShards);
  }
}

PeriodId ShardedRegistry::insert(PeriodRecord&& record) {
  const std::uint32_t s = shard_of_thread(record.thread);
  record.stripe = s;
  std::lock_guard<std::mutex> lock(shards_[s].mu);
  return shards_[s].reg.insert(std::move(record));
}

const PeriodRecord* ShardedRegistry::find(PeriodId id) const {
  const Shard& shard = shards_[shard_of_period(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.reg.find(id);
}

PeriodRecord* ShardedRegistry::find_mutable(PeriodId id) {
  Shard& shard = shards_[shard_of_period(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.reg.find_mutable(id);
}

PeriodRecord ShardedRegistry::remove(PeriodId id) {
  Shard& shard = shards_[shard_of_period(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.reg.remove(id);
}

std::optional<PeriodRecord> ShardedRegistry::try_remove(PeriodId id) {
  Shard& shard = shards_[shard_of_period(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.reg.find(id) == nullptr) return std::nullopt;
  return shard.reg.remove(id);
}

std::optional<PeriodRecord> ShardedRegistry::take_if_calm(PeriodId id) {
  Shard& shard = shards_[shard_of_period(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const PeriodRecord* record = shard.reg.find(id);
  if (record == nullptr || !record->admitted || record->oversub) {
    return std::nullopt;
  }
  return shard.reg.remove(id);
}

bool ShardedRegistry::mark_admitted(PeriodId id) {
  Shard& shard = shards_[shard_of_period(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  PeriodRecord* record = shard.reg.find_mutable(id);
  if (record == nullptr) return false;
  record->admitted = true;
  return true;
}

std::optional<PeriodId> ShardedRegistry::active_for_thread(
    sim::ThreadId thread) const {
  const Shard& shard = shards_[shard_of_thread(thread)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.reg.active_for_thread(thread);
}

std::size_t ShardedRegistry::active_count() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    count += shard.reg.active_count();
  }
  return count;
}

std::vector<PeriodRecord> ShardedRegistry::snapshot() const {
  std::vector<PeriodRecord> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<PeriodRecord> part = shard.reg.snapshot();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const PeriodRecord& a, const PeriodRecord& b) {
              return a.id < b.id;
            });
  return out;
}

void ShardedWaitlist::push(Entry entry) {
  entry.seq = next_seq_++;
  shards_[shard_of_period(entry.period)].push_back(entry);
  total_.fetch_add(1);  // seq_cst: this is the parker's Dekker store
  dirty_ = true;
}

const std::deque<ShardedWaitlist::Entry>& ShardedWaitlist::entries() const {
  if (dirty_) rebuild();
  return merged_;
}

ShardedWaitlist::Entry& ShardedWaitlist::entry_at(std::size_t index) {
  if (dirty_) rebuild();
  const auto [shard, local] = locators_[index];
  dirty_ = true;  // caller may mutate; the merged copies go stale
  return shards_[shard][local];
}

std::vector<ShardedWaitlist::Entry> ShardedWaitlist::drain_admissible(
    const std::function<bool(const Entry&)>& admit, bool head_only) {
  if (dirty_) rebuild();
  std::vector<Entry> out;
  std::vector<std::uint64_t> seqs;
  for (const Entry& entry : merged_) {
    if (admit(entry)) {
      out.push_back(entry);
      seqs.push_back(entry.seq);
    } else if (head_only) {
      break;
    }
  }
  if (!out.empty()) {
    for (auto& shard : shards_) {
      shard.erase(std::remove_if(shard.begin(), shard.end(),
                                 [&seqs](const Entry& e) {
                                   return std::find(seqs.begin(), seqs.end(),
                                                    e.seq) != seqs.end();
                                 }),
                  shard.end());
    }
    total_.fetch_sub(out.size());
    dirty_ = true;
  }
  return out;
}

ShardedWaitlist::Entry ShardedWaitlist::remove_at(std::size_t index) {
  if (dirty_) rebuild();
  const auto [shard, local] = locators_[index];
  return take(shard, local);
}

void ShardedWaitlist::restore(Entry entry) {
  auto& shard = shards_[shard_of_period(entry.period)];
  const auto pos = std::lower_bound(
      shard.begin(), shard.end(), entry.seq,
      [](const Entry& e, std::uint64_t seq) { return e.seq < seq; });
  shard.insert(pos, std::move(entry));
  total_.fetch_add(1);
  dirty_ = true;
}

std::vector<ShardedWaitlist::Entry> ShardedWaitlist::remove_process(
    sim::ProcessId process) {
  return drain_admissible(
      [process](const Entry& e) { return e.process == process; },
      /*head_only=*/false);
}

std::size_t ShardedWaitlist::count_process(sim::ProcessId process) const {
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    for (const Entry& e : shard) {
      if (e.process == process) ++count;
    }
  }
  return count;
}

void ShardedWaitlist::rebuild() const {
  merged_.clear();
  locators_.clear();
  std::vector<std::pair<std::uint64_t, std::pair<std::uint32_t, std::size_t>>>
      order;
  for (std::uint32_t s = 0; s < kNumShards; ++s) {
    for (std::size_t i = 0; i < shards_[s].size(); ++i) {
      order.emplace_back(shards_[s][i].seq, std::make_pair(s, i));
    }
  }
  std::sort(order.begin(), order.end());
  for (const auto& [seq, loc] : order) {
    (void)seq;
    merged_.push_back(shards_[loc.first][loc.second]);
    locators_.push_back(loc);
  }
  dirty_ = false;
}

ShardedWaitlist::Entry ShardedWaitlist::take(std::uint32_t shard,
                                             std::size_t local_index) {
  auto& dq = shards_[shard];
  Entry entry = std::move(dq[local_index]);
  dq.erase(dq.begin() + static_cast<std::ptrdiff_t>(local_index));
  total_.fetch_sub(1);
  dirty_ = true;
  return entry;
}

}  // namespace rda::core
