# Empty compiler generated dependencies file for rda_workload.
# This may be replaced when dependencies are built.
