// micro_profiler — profiling-pipeline benchmark: serial per-pass streaming
// vs the single-read TraceArena pipeline, and sampled vs exact reuse curves.
//
//   micro_profiler [--records N] [--jobs J] [--sample-rate R]
//                  [--levels L] [--trace FILE] [--out BENCH_profiler.json]
//
// Reports, and emits as JSON for trend tracking:
//   * trace write throughput (buffered TraceFileWriter),
//   * wall-clock of the serial baseline (one FileTraceSource pass per
//     ladder level + one exact Mattson pass) vs the pipeline at --jobs J
//     with the sampled reuse curve,
//   * --jobs J vs --jobs 1 bit-equality (determinism), and
//   * sampled-vs-exact working-set-size relative error.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "profiler/multi_granularity.hpp"
#include "profiler/pipeline.hpp"
#include "profiler/reuse_distance.hpp"
#include "trace/arena.hpp"
#include "trace/generators.hpp"
#include "trace/loop_nest.hpp"
#include "trace/trace_io.hpp"
#include "util/atomic_file.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"

namespace {

using rda::util::MB;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Three-phase trace (big hot/cold phase, small phase, big phase again) with
/// loop back-edges — enough structure for every ladder level to find work.
std::unique_ptr<rda::trace::TraceSource> make_trace(std::uint64_t records) {
  using namespace rda::trace;
  auto phase = [](std::uint64_t base, std::uint64_t bytes,
                  std::uint64_t accesses, std::uint64_t jump_pc,
                  std::uint64_t seed) {
    RegionSpec spec;
    spec.base = base;
    spec.size_bytes = bytes;
    spec.pattern = Pattern::kHotCold;
    spec.hot_fraction = 0.25;
    spec.hot_probability = 0.9;
    spec.access_granularity = 8;
    spec.jump_pc = jump_pc;
    spec.jump_period = 128;
    return std::make_unique<RegionAccessSource>(spec, accesses, seed);
  };
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.push_back(phase(0x10000000, MB(8), records * 2 / 5, 0x1010, 1));
  parts.push_back(phase(0x40000000, MB(1), records / 5, 0x2010, 2));
  parts.push_back(phase(0x20000000, MB(8), records * 2 / 5, 0x1010, 3));
  return std::make_unique<ConcatSource>(std::move(parts));
}

rda::trace::LoopNest make_nest() {
  rda::trace::LoopNest nest;
  nest.add_loop("outer.sweep", 0x1000, 0x1100);
  nest.add_loop("small.phase", 0x2000, 0x2100);
  return nest;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rda;
  auto arg_u64 = [&](const std::string& key,
                     std::uint64_t fallback) -> std::uint64_t {
    for (int i = 1; i + 1 < argc; ++i) {
      if (key == argv[i]) return std::strtoull(argv[i + 1], nullptr, 10);
    }
    return fallback;
  };
  auto arg_double = [&](const std::string& key, double fallback) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (key == argv[i]) return std::strtod(argv[i + 1], nullptr);
    }
    return fallback;
  };
  auto arg_str = [&](const std::string& key, std::string fallback) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (key == argv[i]) return std::string(argv[i + 1]);
    }
    return fallback;
  };

  const std::uint64_t records = arg_u64("--records", 8'000'000);
  const int jobs = static_cast<int>(arg_u64("--jobs", 4));
  const double sample_rate = arg_double("--sample-rate", 0.01);
  const int levels = static_cast<int>(arg_u64("--levels", 4));
  const std::string trace_path =
      arg_str("--trace", "micro_profiler.rdatrc");
  const std::string out_path = arg_str("--out", "BENCH_profiler.json");

  const trace::LoopNest nest = make_nest();

  // --- Stage 1: write the trace (buffered writer throughput). -------------
  auto t0 = std::chrono::steady_clock::now();
  {
    trace::TraceFileWriter writer(trace_path, nest);
    auto source = make_trace(records);
    writer.write_all(*source);
  }
  const double write_ms = ms_since(t0);
  const trace::TraceFile file = trace::TraceFile::open(trace_path);
  std::printf("wrote %llu records in %.0f ms (%.1f Mrec/s)\n",
              static_cast<unsigned long long>(file.record_count()), write_ms,
              static_cast<double>(file.record_count()) / 1e3 / write_ms);

  prof::MultiGranularityConfig mcfg;
  mcfg.base_window = std::max<std::uint64_t>(records / 16, 1u << 16);
  mcfg.levels = levels;
  mcfg.ladder_ratio = 4;

  // --- Stage 2: serial baseline — one streaming decode per pass. ----------
  t0 = std::chrono::steady_clock::now();
  const prof::MultiGranularityReport serial_multi =
      prof::MultiGranularityProfiler(mcfg).profile(
          [&] { return file.records(); });
  prof::ReuseDistanceAnalyzer exact_rd;
  {
    auto pass = file.records();
    exact_rd.consume(*pass);
  }
  const double serial_ms = ms_since(t0);
  const double exact_wss_mb = util::bytes_to_mb(exact_rd.working_set_bytes());
  std::printf("serial baseline (%d ladder passes + exact reuse): %.0f ms, "
              "%zu merged periods, wss %.2f MB\n",
              levels, serial_ms, serial_multi.periods.size(), exact_wss_mb);

  // --- Stage 3: pipeline — one decode, parallel passes, sampled reuse. ----
  prof::PipelineConfig pcfg;
  pcfg.multi = mcfg;
  pcfg.reuse_curve = true;
  pcfg.sample_rate = sample_rate;
  pcfg.jobs = jobs;
  t0 = std::chrono::steady_clock::now();
  const trace::TraceArena arena = trace::TraceArena::load(trace_path);
  const prof::PipelineResult par = prof::ProfilePipeline(pcfg).run(arena);
  const double pipeline_ms = ms_since(t0);
  const double sampled_wss_mb =
      util::bytes_to_mb(par.reuse->working_set_bytes());
  std::printf("pipeline (--jobs %d, --sample-rate %g, arena %s): %.0f ms\n",
              jobs, sample_rate, arena.mapped() ? "mmap" : "heap",
              pipeline_ms);

  // --- Stage 4: determinism — jobs=1 must be bit-identical. ---------------
  pcfg.jobs = 1;
  t0 = std::chrono::steady_clock::now();
  const prof::PipelineResult ser = prof::ProfilePipeline(pcfg).run(arena);
  const double pipeline1_ms = ms_since(t0);
  bool deterministic =
      ser.multi.periods.size() == par.multi.periods.size() &&
      ser.level_reports.size() == par.level_reports.size() &&
      ser.reuse->histogram() == par.reuse->histogram();
  for (std::size_t i = 0;
       deterministic && i < ser.level_reports.size(); ++i) {
    deterministic = ser.level_reports[i].to_string() ==
                    par.level_reports[i].to_string();
  }

  const double speedup = serial_ms / pipeline_ms;
  const double wss_rel_err =
      exact_wss_mb > 0.0
          ? std::abs(sampled_wss_mb - exact_wss_mb) / exact_wss_mb
          : 0.0;
  std::printf("speedup vs serial: %.2fx (jobs=1 pipeline: %.0f ms), "
              "deterministic: %s\n",
              speedup, pipeline1_ms, deterministic ? "yes" : "no");
  std::printf("wss exact %.2f MB vs sampled %.2f MB (rel err %.1f%%)\n",
              exact_wss_mb, sampled_wss_mb, 100.0 * wss_rel_err);

  char json[768];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"records\": %llu,\n"
                "  \"levels\": %d,\n"
                "  \"jobs\": %d,\n"
                "  \"sample_rate\": %g,\n"
                "  \"write_ms\": %.1f,\n"
                "  \"write_mrec_per_s\": %.2f,\n"
                "  \"serial_ms\": %.1f,\n"
                "  \"pipeline_ms\": %.1f,\n"
                "  \"pipeline_jobs1_ms\": %.1f,\n"
                "  \"speedup\": %.3f,\n"
                "  \"deterministic\": %s,\n"
                "  \"exact_wss_mb\": %.3f,\n"
                "  \"sampled_wss_mb\": %.3f,\n"
                "  \"wss_rel_err\": %.4f\n"
                "}\n",
                static_cast<unsigned long long>(records), levels, jobs,
                sample_rate, write_ms,
                static_cast<double>(file.record_count()) / 1e3 / write_ms,
                serial_ms, pipeline_ms, pipeline1_ms, speedup,
                deterministic ? "true" : "false", exact_wss_mb,
                sampled_wss_mb, wss_rel_err);
  try {
    rda::util::write_file_atomic(out_path, json);
    std::printf("wrote %s\n", out_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: %s\n", e.what());
  }

  std::remove(trace_path.c_str());
  return deterministic ? 0 : 1;
}
