// Profiler front door: trace → windows → periods → loop-anchored report,
// plus synthesis of the API annotations a compiler pass would insert.
//
// §4.4: "The main component that needed developer intervention is actually
// inserting the API calls into the application" — the annotation text this
// report emits is that insertion, mechanically derived.
#pragma once

#include <string>
#include <vector>

#include "profiler/detector.hpp"
#include "profiler/loop_mapper.hpp"
#include "profiler/window.hpp"
#include "trace/loop_nest.hpp"
#include "trace/record.hpp"

namespace rda::prof {

/// A ready-to-insert pair of API calls for one detected period.
struct Annotation {
  std::string loop_name;    ///< boundary (outermost) loop, "?" if unmapped
  std::uint64_t wss_bytes = 0;
  ReuseLevel reuse = ReuseLevel::kLow;
  /// e.g. "pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH)"
  std::string begin_call;
  std::string end_call;  ///< "pp_end(pp_id)"
};

/// Full profiling result for one application run.
struct ProfileReport {
  std::vector<WindowStats> windows;
  std::vector<MappedPeriod> periods;
  std::vector<Annotation> annotations;

  /// Human-readable rendering (used by the profile_and_predict example).
  std::string to_string() const;
};

/// One-call pipeline over a trace: window analysis, §2.4 detection, loop
/// mapping, annotation synthesis.
class Profiler {
 public:
  Profiler(WindowConfig window_config, DetectorConfig detector_config)
      : analyzer_(window_config), detector_(detector_config) {}

  ProfileReport profile(trace::TraceSource& source,
                        const trace::LoopNest& nest) const;

  const WindowAnalyzer& analyzer() const { return analyzer_; }
  const PeriodDetector& detector() const { return detector_; }

 private:
  WindowAnalyzer analyzer_;
  PeriodDetector detector_;
};

/// Renders "pp_begin(RESOURCE_LLC, MB(x.x), REUSE_Y)" for a period.
std::string render_begin_call(std::uint64_t wss_bytes, ReuseLevel reuse);

/// Detection → loop mapping → annotation synthesis over already-computed
/// window statistics. Shared by Profiler::profile and the parallel pipeline
/// so both assemble byte-identical reports from the same windows.
ProfileReport assemble_report(std::vector<WindowStats> windows,
                              const PeriodDetector& detector,
                              const trace::LoopNest& nest);

}  // namespace rda::prof
