# Empty compiler generated dependencies file for rda_exp.
# This may be replaced when dependencies are built.
