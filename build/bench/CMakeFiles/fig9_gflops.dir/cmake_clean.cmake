file(REMOVE_RECURSE
  "CMakeFiles/fig9_gflops.dir/fig9_gflops.cpp.o"
  "CMakeFiles/fig9_gflops.dir/fig9_gflops.cpp.o.d"
  "CMakeFiles/fig9_gflops.dir/fig_common.cpp.o"
  "CMakeFiles/fig9_gflops.dir/fig_common.cpp.o.d"
  "fig9_gflops"
  "fig9_gflops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_gflops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
