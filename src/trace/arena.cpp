#include "trace/arena.hpp"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "trace/error.hpp"
#include "trace/trace_io.hpp"
#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define RDA_ARENA_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define RDA_ARENA_HAS_MMAP 0
#endif

namespace rda::trace {

namespace {

/// Decodes packed records straight out of the arena buffer. Holds a shared
/// reference to the buffer so a view outliving its arena stays valid.
class ArenaRecordView final : public TraceSource {
 public:
  ArenaRecordView(std::shared_ptr<const void> owner, const unsigned char* begin,
                  std::uint64_t count)
      : owner_(std::move(owner)),
        cursor_(begin),
        end_(begin + count * kTraceRecordBytes) {}

  bool next(TraceRecord& out) override {
    if (cursor_ == end_) return false;
    std::memcpy(&out.value, cursor_, sizeof(std::uint64_t));
    out.kind = static_cast<RecordKind>(cursor_[8]);
    cursor_ += kTraceRecordBytes;
    return true;
  }

 private:
  std::shared_ptr<const void> owner_;
  const unsigned char* cursor_;
  const unsigned char* end_;
};

}  // namespace

/// Owns the record bytes: a read-only file mapping when available, a heap
/// copy otherwise. The record section starts at `records()`.
class TraceArena::Buffer {
 public:
  ~Buffer() {
#if RDA_ARENA_HAS_MMAP
    if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
#endif
  }

  static std::shared_ptr<const Buffer> create(const std::string& path,
                                              long offset,
                                              std::uint64_t record_count) {
    auto buffer = std::make_shared<Buffer>();
    const std::size_t record_bytes =
        static_cast<std::size_t>(record_count) * kTraceRecordBytes;
#if RDA_ARENA_HAS_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    RDA_CHECK_MSG(fd >= 0, "cannot open trace file " << path);
    struct stat st{};
    const int stat_rc = ::fstat(fd, &st);
    const std::size_t file_size =
        stat_rc == 0 ? static_cast<std::size_t>(st.st_size) : 0;
    if (stat_rc == 0) {
      if (file_size < static_cast<std::size_t>(offset) + record_bytes) {
        trace_error(path, file_size,
                    "truncated: header promises " +
                        std::to_string(record_count) + " records");
      }
      void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base != MAP_FAILED) {
        buffer->map_base_ = base;
        buffer->map_length_ = file_size;
        buffer->records_ =
            static_cast<const unsigned char*>(base) + offset;
        ::close(fd);
        return buffer;
      }
    }
    ::close(fd);
#endif
    // Fallback: read the record section into a heap buffer.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    RDA_CHECK_MSG(f != nullptr, "cannot open trace file " << path);
    RDA_CHECK(std::fseek(f, offset, SEEK_SET) == 0);
    buffer->heap_.resize(record_bytes);
    const std::size_t got =
        std::fread(buffer->heap_.data(), 1, record_bytes, f);
    std::fclose(f);
    if (got != record_bytes) {
      trace_error(path, static_cast<std::uint64_t>(offset) + got,
                  "truncated: header promises " +
                      std::to_string(record_count) + " records");
    }
    buffer->records_ = buffer->heap_.data();
    return buffer;
  }

  const unsigned char* records() const { return records_; }
  bool mapped() const { return map_base_ != nullptr; }

 private:
  void* map_base_ = nullptr;
  std::size_t map_length_ = 0;
  std::vector<unsigned char> heap_;
  const unsigned char* records_ = nullptr;
};

TraceArena TraceArena::load(const std::string& path) {
  const TraceFile file = TraceFile::open(path);
  TraceArena arena;
  arena.nest_ = file.nest();
  arena.record_count_ = file.record_count();
  arena.buffer_ =
      Buffer::create(path, file.records_offset(), file.record_count());
  return arena;
}

std::unique_ptr<TraceSource> TraceArena::records() const {
  RDA_CHECK_MSG(buffer_ != nullptr, "TraceArena not loaded");
  return std::make_unique<ArenaRecordView>(buffer_, buffer_->records(),
                                           record_count_);
}

const unsigned char* TraceArena::raw_records() const {
  RDA_CHECK_MSG(buffer_ != nullptr, "TraceArena not loaded");
  return buffer_->records();
}

bool TraceArena::mapped() const {
  return buffer_ != nullptr && buffer_->mapped();
}

}  // namespace rda::trace
