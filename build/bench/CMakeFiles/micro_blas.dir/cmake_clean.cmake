file(REMOVE_RECURSE
  "CMakeFiles/micro_blas.dir/micro_blas.cpp.o"
  "CMakeFiles/micro_blas.dir/micro_blas.cpp.o.d"
  "micro_blas"
  "micro_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
