#include "workload/native_runner.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "blas/level1.hpp"
#include "blas/level2.hpp"
#include "blas/level3.hpp"
#include "runtime/affinity.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rda::workload {

namespace {

std::vector<double> filled(std::size_t n, double v) {
  return std::vector<double>(n, v);
}

/// One worker's kernel cycle for a BLAS level. Returns flops retired.
double run_level_kernels(int level, int worker, int repeats,
                         double size_scale, rt::AdmissionGate* gate) {
  double flops = 0.0;
  auto with_period = [&](double demand_bytes, ReuseLevel reuse,
                         const char* label, auto&& body) {
    core::PeriodId id = core::kInvalidPeriod;
    if (gate != nullptr) {
      id = gate->begin(ResourceKind::kLLC, demand_bytes, reuse, label);
    }
    body();
    if (gate != nullptr) gate->end(id);
  };

  if (level == 1) {
    // Vector-vector: 1 M doubles per operand (8 MB streamed, 0.6 MB hot is
    // the paper's declaration; the true footprint is what we declare here).
    const std::size_t n =
        static_cast<std::size_t>(1048576.0 * size_scale);
    auto x = filled(n, 1.0 + worker);
    auto y = filled(n, 0.5);
    const double demand = 2.0 * static_cast<double>(n) * sizeof(double);
    for (int r = 0; r < repeats; ++r) {
      switch (r % 4) {
        case 0:
          with_period(demand, ReuseLevel::kLow, "daxpy",
                      [&] { blas::daxpy(1.0001, x, y); });
          flops += blas::daxpy_flops(n);
          break;
        case 1:
          with_period(demand, ReuseLevel::kLow, "dcopy",
                      [&] { blas::dcopy(x, y); });
          break;
        case 2:
          with_period(demand / 2.0, ReuseLevel::kLow, "dscal",
                      [&] { blas::dscal(1.0001, x); });
          flops += blas::dscal_flops(n);
          break;
        default:
          with_period(demand, ReuseLevel::kLow, "dswap",
                      [&] { blas::dswap(x, y); });
          break;
      }
    }
  } else if (level == 2) {
    const std::size_t n = static_cast<std::size_t>(512.0 * size_scale);
    auto a = filled(n * n, 0.25);
    auto x = filled(n, 1.0);
    auto y = filled(n, 0.0);
    // Make the triangular solves well-conditioned.
    for (std::size_t i = 0; i < n; ++i) a[i * n + i] = 2.0 + (i % 3);
    const double demand =
        static_cast<double>((n * n + 2 * n) * sizeof(double));
    for (int r = 0; r < repeats; ++r) {
      switch (r % 4) {
        case 0:
          with_period(demand, ReuseLevel::kMedium, "dgemvN", [&] {
            blas::dgemv_n(n, n, 1.0, a, x, 0.0, y);
          });
          break;
        case 1:
          with_period(demand, ReuseLevel::kMedium, "dgemvT", [&] {
            blas::dgemv_t(n, n, 1.0, a, y, 0.0, x);
          });
          break;
        case 2:
          with_period(demand, ReuseLevel::kMedium, "dtrmv",
                      [&] { blas::dtrmv_upper(n, a, x); });
          flops += blas::dtrmv_flops(n) - blas::dgemv_flops(n, n);
          break;
        default:
          with_period(demand, ReuseLevel::kMedium, "dtrsv",
                      [&] { blas::dtrsv_upper(n, a, x); });
          flops += blas::dtrsv_flops(n) - blas::dgemv_flops(n, n);
          break;
      }
      flops += blas::dgemv_flops(n, n);
    }
  } else {
    RDA_CHECK_MSG(level == 3, "BLAS level must be 1, 2, or 3");
    const std::size_t n = static_cast<std::size_t>(192.0 * size_scale);
    auto a = filled(n * n, 0.5);
    auto b = filled(n * n, 0.25);
    auto c = filled(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) a[i * n + i] = 2.0;
    const double demand =
        static_cast<double>(3 * n * n * sizeof(double));
    for (int r = 0; r < repeats; ++r) {
      switch (r % 4) {
        case 0:
          with_period(demand, ReuseLevel::kHigh, "dgemm", [&] {
            blas::dgemm(n, n, n, 1.0, a, b, 0.0, c);
          });
          flops += blas::dgemm_flops(n, n, n);
          break;
        case 1:
          with_period(demand, ReuseLevel::kHigh, "dsyrk", [&] {
            blas::dsyrk_upper(n, n, 1.0, a, 0.0, c);
          });
          flops += blas::dsyrk_flops(n, n);
          break;
        case 2:
          with_period(demand, ReuseLevel::kHigh, "dtrmm", [&] {
            blas::dtrmm_ru(n, n, a, b);
          });
          flops += blas::dtrmm_flops(n, n);
          break;
        default:
          with_period(demand, ReuseLevel::kHigh, "dtrsm", [&] {
            blas::dtrsm_ru(n, n, a, b);
          });
          flops += blas::dtrsm_flops(n, n);
          break;
      }
    }
  }
  return flops;
}

}  // namespace

NativeRunResult run_native_blas(int level, const NativeRunConfig& config) {
  RDA_CHECK_MSG(level >= 1 && level <= 3, "BLAS level must be 1, 2, or 3");
  RDA_CHECK(config.threads >= 1);
  std::optional<rt::AdmissionGate> gate;
  if (config.policy.has_value()) {
    rt::GateConfig gc;
    gc.llc_capacity_bytes = config.llc_capacity_bytes;
    gc.policy = *config.policy;
    gc.oversubscription = config.oversubscription;
    gate.emplace(gc);
  }

  std::vector<double> per_thread_flops(
      static_cast<std::size_t>(config.threads), 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int w = 0; w < config.threads; ++w) {
    workers.emplace_back([&, w] {
      rt::pin_to_cpu(w % rt::online_cpus());
      per_thread_flops[static_cast<std::size_t>(w)] = run_level_kernels(
          level, w, config.repeats, config.size_scale,
          gate ? &*gate : nullptr);
    });
  }
  for (auto& t : workers) t.join();

  NativeRunResult result;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const double f : per_thread_flops) result.flops += f;
  if (gate) {
    const rt::GateStats stats = gate->stats();
    result.gate_waits = stats.waits;
    result.gate_wait_seconds = stats.total_wait_seconds;
  }
  return result;
}

}  // namespace rda::workload
