// Human-readable summary of a recorded admission trace: per-kind event
// counts and the wait-latency distribution, rendered with util::Table so it
// matches the bench/tool output style.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/event.hpp"
#include "obs/histogram.hpp"

namespace rda::obs {

/// One resource's admission-ledger snapshot: the monitor's per-kind row
/// (capacity, policy bound, aggregate usage, unclaimed budget, overdraft
/// from forced charges, watchdog oversubscription tally). Plain data — obs
/// must not depend on the core layer, so the core side populates these
/// (core::AdmissionCore::resource_rows()).
struct ResourceRow {
  ResourceKind kind = ResourceKind::kLLC;
  double capacity = 0.0;
  double bound = 0.0;   ///< policy admission bound (may be +inf)
  double usage = 0.0;
  double free = 0.0;    ///< unclaimed admission budget across stripes
  double overdraft = 0.0;
  double oversubscribed = 0.0;

  /// Admissible headroom left under the policy bound (0 when overdrafted).
  double headroom() const;
};

/// Per-kind counts + wait distribution as an aligned text block. When
/// `resources` is non-empty a second table reports each configured
/// resource's usage / overdraft / oversubscription alongside the events.
std::string summarize(std::span<const Event> events,
                      const WaitHistogram& waits,
                      std::span<const ResourceRow> resources = {});

}  // namespace rda::obs
