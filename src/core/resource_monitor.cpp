#include "core/resource_monitor.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::core {

ResourceMonitor::ResourceMonitor() = default;

void ResourceMonitor::set_capacity(ResourceKind kind, double capacity) {
  RDA_CHECK_MSG(capacity > 0.0, "capacity must be positive for "
                                    << to_string(kind));
  states_[static_cast<std::size_t>(kind)].capacity = capacity;
  ++version_;
}

const ResourceState& ResourceMonitor::state(ResourceKind kind) const {
  return states_[static_cast<std::size_t>(kind)];
}

void ResourceMonitor::increment_load(ResourceKind kind, double demand) {
  RDA_CHECK_MSG(demand >= 0.0, "negative demand on " << to_string(kind));
  states_[static_cast<std::size_t>(kind)].usage += demand;
  ++version_;
}

void ResourceMonitor::decrement_load(ResourceKind kind, double demand) {
  RDA_CHECK_MSG(demand >= 0.0, "negative demand on " << to_string(kind));
  ResourceState& s = states_[static_cast<std::size_t>(kind)];
  // Relative tolerance: repeated add/subtract at megabyte scale accumulates
  // ~ulp-sized dust; a REAL underflow (double end, forged demand) is off by
  // a whole demand, far beyond this band.
  const double tolerance = 1e-6 * demand + 1e-9;
  RDA_CHECK_MSG(s.usage + tolerance >= demand,
                "load underflow on " << to_string(kind) << ": usage "
                                     << s.usage << ", removing " << demand);
  s.usage -= demand;
  if (s.usage < dust_threshold(kind)) s.usage = 0.0;  // snap dust to zero
  ++version_;
}

void ResourceMonitor::add_oversubscribed(ResourceKind kind, double demand) {
  RDA_CHECK_MSG(demand >= 0.0, "negative demand on " << to_string(kind));
  oversub_[static_cast<std::size_t>(kind)] += demand;
}

void ResourceMonitor::remove_oversubscribed(ResourceKind kind, double demand) {
  RDA_CHECK_MSG(demand >= 0.0, "negative demand on " << to_string(kind));
  double& tally = oversub_[static_cast<std::size_t>(kind)];
  const double tolerance = 1e-6 * demand + 1e-9;
  RDA_CHECK_MSG(tally + tolerance >= demand,
                "oversubscription underflow on "
                    << to_string(kind) << ": tally " << tally << ", removing "
                    << demand);
  tally -= demand;
  if (tally < dust_threshold(kind)) tally = 0.0;
}

bool ResourceMonitor::effectively_free(ResourceKind kind) const {
  return state(kind).usage <= dust_threshold(kind);
}

double ResourceMonitor::dust_threshold(ResourceKind kind) const {
  // Anything below a millionth of capacity is arithmetic residue, not load.
  return 1e-6 * std::max(1.0, state(kind).capacity);
}

}  // namespace rda::core
