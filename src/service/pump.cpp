#include "service/pump.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "service/queue.hpp"
#include "util/check.hpp"

namespace rda::service {

namespace {

core::AdmitRequest make_request(sim::ThreadId thread, double demand) {
  core::AdmitRequest request;
  request.thread = thread;
  request.process = thread;
  request.demands = {{ResourceKind::kLLC, demand}};
  return request;
}

}  // namespace

PumpResult run_pump(const PumpConfig& config) {
  RDA_CHECK_MSG(config.producers >= 1, "pump needs at least one producer");
  const std::uint64_t total_ops =
      static_cast<std::uint64_t>(config.producers) *
      config.ops_per_producer;
  RDA_CHECK_MSG(total_ops + 1000 <
                    static_cast<std::uint64_t>(sim::kInvalidThread),
                "op count exceeds the per-op thread-id space");

  core::AdmissionConfig cc;
  cc.llc_capacity_bytes = config.llc_capacity_bytes;
  cc.policy = core::PolicyKind::kStrict;
  core::AdmissionCore core(cc);
  // Wakes only ever target the squatters, which never fit; a no-op waker
  // documents that nobody sleeps on this core.
  core.set_batch_waker([](const auto&) {});

  // Park the squatters: the first holds 55% of the LLC, the rest park
  // behind it (two cannot co-fit), so the waitlist stays non-empty and
  // every producer op goes through the slow lane.
  const sim::ThreadId squatter_base =
      static_cast<sim::ThreadId>(total_ops + 1);
  std::vector<core::PeriodId> squatter_parked;
  core::PeriodId squatter_held = core::kInvalidPeriod;
  for (int s = 0; s < config.squatters; ++s) {
    const core::AdmitTicket ticket = core.admit(
        make_request(squatter_base + static_cast<sim::ThreadId>(s),
                     0.55 * config.llc_capacity_bytes),
        0.0);
    if (s == 0) {
      RDA_CHECK_MSG(ticket.admitted, "first squatter must fit alone");
      squatter_held = ticket.id;
    } else {
      RDA_CHECK_MSG(!ticket.admitted, "squatters must not co-fit");
      squatter_parked.push_back(ticket.id);
    }
  }

  const double demand = config.demand_fraction * config.llc_capacity_bytes;
  const auto start = std::chrono::steady_clock::now();

  if (!config.batched) {
    std::vector<std::thread> producers;
    producers.reserve(static_cast<std::size_t>(config.producers));
    for (int p = 0; p < config.producers; ++p) {
      producers.emplace_back([&, p] {
        const std::uint64_t base =
            static_cast<std::uint64_t>(p) * config.ops_per_producer;
        for (std::uint64_t i = 0; i < config.ops_per_producer; ++i) {
          const auto thread = static_cast<sim::ThreadId>(base + i);
          const core::AdmitTicket ticket =
              core.admit(make_request(thread, demand), 0.0);
          RDA_CHECK_MSG(ticket.admitted,
                        "pump demand sized to always admit");
          core.release(ticket.id, {}, 0.0);
        }
      });
    }
    for (std::thread& t : producers) t.join();
  } else {
    SubmissionQueue<sim::ThreadId> queue(config.queue_capacity);
    std::vector<std::thread> producers;
    producers.reserve(static_cast<std::size_t>(config.producers));
    for (int p = 0; p < config.producers; ++p) {
      producers.emplace_back([&, p] {
        const std::uint64_t base =
            static_cast<std::uint64_t>(p) * config.ops_per_producer;
        for (std::uint64_t i = 0; i < config.ops_per_producer; ++i) {
          const auto thread = static_cast<sim::ThreadId>(base + i);
          while (!queue.push(thread)) std::this_thread::yield();
        }
      });
    }

    std::thread drainer([&] {
      std::vector<sim::ThreadId> batch;
      std::vector<core::AdmitRequest> requests;
      std::vector<core::PeriodId> admitted;
      std::uint64_t drained = 0;
      while (drained < total_ops) {
        batch.clear();
        queue.pop_batch(batch, config.batch_max);
        if (batch.empty()) {
          std::this_thread::yield();
          continue;
        }
        drained += batch.size();
        requests.clear();
        for (const sim::ThreadId thread : batch) {
          requests.push_back(make_request(thread, demand));
        }
        const std::vector<core::AdmitTicket> tickets =
            core.admit_batch(std::move(requests), 0.0);
        requests = {};
        admitted.clear();
        for (const core::AdmitTicket& ticket : tickets) {
          RDA_CHECK_MSG(ticket.admitted,
                        "pump demand sized to always admit");
          admitted.push_back(ticket.id);
        }
        core.release_batch(admitted, 0.0);
      }
    });

    for (std::thread& t : producers) t.join();
    drainer.join();
  }

  const auto stop = std::chrono::steady_clock::now();

  // Unwind the squatters so the core audit comes out clean.
  for (const core::PeriodId id : squatter_parked) {
    core.try_withdraw(id, 0.0);
  }
  if (squatter_held != core::kInvalidPeriod) {
    core.release(squatter_held, {}, 0.0);
  }
  const core::AdmissionCore::AuditReport audit = core.audit();
  RDA_CHECK_MSG(audit.ok, audit.detail);

  PumpResult result;
  result.ops = total_ops;
  result.seconds =
      std::chrono::duration<double>(stop - start).count();
  result.mops = result.seconds > 0.0
                    ? static_cast<double>(total_ops) / result.seconds / 1e6
                    : 0.0;
  return result;
}

}  // namespace rda::service
