#include "workload/native_runner.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::workload {
namespace {

using rda::util::MB;

NativeRunConfig tiny(std::optional<core::PolicyKind> policy) {
  NativeRunConfig cfg;
  cfg.policy = policy;
  cfg.llc_capacity_bytes = static_cast<double>(MB(15));
  cfg.threads = 3;
  cfg.repeats = 4;
  cfg.size_scale = 0.25;
  return cfg;
}

TEST(NativeRunner, Level1RunsWithoutGate) {
  const NativeRunResult r = run_native_blas(1, tiny(std::nullopt));
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.flops, 0.0);
  EXPECT_EQ(r.gate_waits, 0u);
}

TEST(NativeRunner, Level2RunsUnderStrict) {
  const NativeRunResult r =
      run_native_blas(2, tiny(core::PolicyKind::kStrict));
  EXPECT_GT(r.flops, 0.0);
  EXPECT_GT(r.gflops(), 0.0);
}

TEST(NativeRunner, Level3RunsUnderCompromise) {
  const NativeRunResult r =
      run_native_blas(3, tiny(core::PolicyKind::kCompromise));
  EXPECT_GT(r.flops, 0.0);
}

TEST(NativeRunner, StrictSerializesWhenDemandsCollide) {
  // Shrink the "LLC" so two operand sets cannot coexist: the gate must
  // produce waits, and the work must still finish.
  NativeRunConfig cfg = tiny(core::PolicyKind::kStrict);
  cfg.threads = 4;
  cfg.size_scale = 1.0;  // 3 x 192^2 doubles ~ 0.85 MB per worker
  cfg.llc_capacity_bytes = static_cast<double>(MB(1));
  const NativeRunResult r = run_native_blas(3, cfg);
  EXPECT_GT(r.gate_waits, 0u);
  EXPECT_GT(r.flops, 0.0);
}

TEST(NativeRunner, FlopCountsScaleWithRepeats) {
  NativeRunConfig once = tiny(std::nullopt);
  once.repeats = 4;
  NativeRunConfig twice = tiny(std::nullopt);
  twice.repeats = 8;
  const double f1 = run_native_blas(3, once).flops;
  const double f2 = run_native_blas(3, twice).flops;
  EXPECT_NEAR(f2, 2.0 * f1, 1e-6 * f2);
}

TEST(NativeRunner, InvalidLevelRejected) {
  EXPECT_THROW(run_native_blas(4, tiny(std::nullopt)), util::CheckFailure);
}

}  // namespace
}  // namespace rda::workload
