// Progress monitor (§3.1, Figs. 2/5/6): the component that tracks pp_begin /
// pp_end transitions, keeps the period registry, and re-schedules waitlisted
// threads when capacity frees up.
//
// Behaviour on begin (paper Fig. 5):
//   create period -> scheduling predicate -> run (load incremented) or
//   pause (placed on the resource waitlist).
// Behaviour on end (paper Fig. 6):
//   remove from registry -> decrement load -> attempt to schedule waiting
//   threads.
//
// Extensions faithful to §3.4:
//   * thread-pool guard: when a member of a pool process is denied, the
//     whole pool is disabled; it is re-admitted only when the pool's entire
//     pending demand fits ("until there is sufficient resources for all of
//     them").
//   * liveness override: a period whose demand can never fit (larger than
//     the policy bound) is force-admitted when the resource is completely
//     free — otherwise a paper-conform system would hang forever on it.
//
// Sharded-core edition: this is the SLOW LANE of the two-lane AdmissionCore.
// All calls are serialized by the core's slow mutex (or by the caller, for
// direct users like the unit tests); internally the monitor now sits on the
// sharded registry/waitlist and stripes its load charges, so its bookkeeping
// composes with the lock-free fast lane running beside it. Wakes are
// BATCHED: a rescan appends woken threads to a pending list and the
// outermost operation flushes them in one pass (one notify for the whole
// pp_end storm instead of one per admission).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/predicate.hpp"
#include "core/registry.hpp"
#include "core/sharding.hpp"
#include "core/waitlist.hpp"
#include "obs/sink.hpp"

namespace rda::core {

/// Starvation watchdog: detects waiters that make no progress (infeasible
/// demand, lost wake, leaked capacity) and escalates them through a
/// degradation ladder instead of letting them wait forever. Disabled by
/// default — the paper's cooperative model needs none of it, and the default
/// hot path must stay branch-free.
struct WatchdogOptions {
  bool enable = false;
  /// Escalate a waiter one rung after this many rescans that left it parked
  /// (a "wake round" = one release/cancel-driven waitlist re-evaluation).
  /// 0 disables the round trigger.
  std::uint32_t max_wake_rounds = 0;
  /// Escalate a waiter one rung after this much time (sim seconds on the
  /// sim substrate, wall-clock seconds on the native gate) without progress,
  /// measured from enqueue or the previous escalation. Checked only from
  /// watchdog_tick(). 0 disables the time trigger.
  double max_wait_seconds = 0.0;
  /// Ladder rung 1: clamp each declared demand to clamp_fraction × capacity,
  /// making an infeasible request feasible (it then competes normally).
  bool clamp = true;
  double clamp_fraction = 1.0;
  /// Ladder rung 2: force-admit with the excess booked in the resource
  /// monitor's separate oversubscription tally.
  bool force_admit = true;
  /// Ladder rung 3: evict the waiter with an error the caller observes.
  bool reject = true;
};

struct MonitorOptions {
  /// Waitlist scan mode on release: admit every fitting entry (true) or stop
  /// at the first non-fitting one (false; stricter FIFO fairness). Only
  /// meaningful under WakeOrder::kFifo.
  bool work_conserving = true;
  /// Enable the §3.4 thread-pool group pause.
  bool pool_guard = true;
  /// Order in which freed capacity is re-offered to parked periods.
  WakeOrder wake_order = WakeOrder::kFifo;
  WatchdogOptions watchdog{};
};

struct MonitorStats {
  std::uint64_t begins = 0;
  std::uint64_t ends = 0;
  std::uint64_t immediate_admissions = 0;
  std::uint64_t blocks = 0;
  std::uint64_t wakes = 0;              ///< admissions from the waitlist
  std::uint64_t forced_admissions = 0;  ///< liveness overrides
  std::uint64_t pool_disables = 0;
  std::uint64_t pool_group_admissions = 0;
  std::uint64_t cancels = 0;       ///< waitlisted requests withdrawn
  std::uint64_t reclaims = 0;      ///< orphaned periods reaped
  std::uint64_t demand_clamps = 0; ///< watchdog rung 1 applications
  std::uint64_t rejections = 0;    ///< watchdog rung 3 evictions
  /// Watchdog rung-2 admits; a subset of forced_admissions (each also emits
  /// kForceAdmit so the event/stat reconciliation stays one-to-one).
  std::uint64_t watchdog_force_admissions = 0;

  /// Field-wise accumulation (cluster layer: fleet-wide admission totals).
  MonitorStats& operator+=(const MonitorStats& o) {
    begins += o.begins;
    ends += o.ends;
    immediate_admissions += o.immediate_admissions;
    blocks += o.blocks;
    wakes += o.wakes;
    forced_admissions += o.forced_admissions;
    pool_disables += o.pool_disables;
    pool_group_admissions += o.pool_group_admissions;
    cancels += o.cancels;
    reclaims += o.reclaims;
    demand_clamps += o.demand_clamps;
    rejections += o.rejections;
    watchdog_force_admissions += o.watchdog_force_admissions;
    return *this;
  }
};

class ProgressMonitor {
 public:
  using WakeFn = std::function<void(sim::ThreadId)>;

  /// One admission grant bound for a sleeping owner. Carrying the PERIOD id
  /// (not just the thread) lets an asynchronous substrate discard a grant
  /// that was delivered late — after its period was already recovered,
  /// withdrawn, or ended — instead of mistaking it for the thread's next
  /// period's grant.
  struct WakeGrant {
    sim::ThreadId thread = sim::kInvalidThread;
    PeriodId period = kInvalidPeriod;
  };

  /// One call per flush with every grant issued by the operation, in wake
  /// order — lets the native gate hand out all grants under one lock and
  /// issue a single notify for the whole batch.
  using BatchWakeFn = std::function<void(const std::vector<WakeGrant>&)>;

  /// A waiter evicted without a wake grant (watchdog rung 3, or reaped off
  /// the waitlist): the substrate must rouse the sleeping owner so it can
  /// observe the error instead of sleeping to its timeout.
  struct EvictNotice {
    sim::ThreadId thread = sim::kInvalidThread;
    PeriodId period = kInvalidPeriod;
    const char* reason = "";
  };
  using EvictFn = std::function<void(const std::vector<EvictNotice>&)>;

  /// Non-owning references must outlive the monitor.
  ProgressMonitor(SchedulingPredicate& predicate, ResourceMonitor& resources,
                  MonitorOptions options = {});

  /// Channel used to resume a previously paused thread once its period is
  /// admitted (the kernel wake event of the paper's implementation). Wakes
  /// are delivered at the end of the outermost monitor operation, in the
  /// order the admissions happened.
  void set_waker(WakeFn waker) { waker_ = std::move(waker); }
  /// Batched alternative; takes precedence over set_waker when both are set.
  void set_batch_waker(BatchWakeFn waker) { batch_waker_ = std::move(waker); }
  /// Eviction-notice channel (flushed with the wakes).
  void set_evict_notifier(EvictFn notifier) {
    evict_notifier_ = std::move(notifier);
  }

  /// Replaces the wake-order strategy (defaults to the one selected by
  /// MonitorOptions::wake_order). Must not be null.
  void set_wake_strategy(std::unique_ptr<WakeStrategy> strategy);
  const WakeStrategy& wake_strategy() const { return *strategy_; }

  /// Attaches a lifecycle-event sink (non-owning; nullptr disables tracing
  /// at the cost of one branch per transition).
  void set_trace_sink(obs::TraceSink* sink) { sink_ = sink; }

  /// Declares a process as a task-pool (§3.4 group semantics).
  void mark_pool(sim::ProcessId process) { pools_.insert(process); }
  bool is_pool(sim::ProcessId process) const { return pools_.count(process); }
  bool pool_disabled(sim::ProcessId process) const {
    return disabled_pools_.count(process) != 0;
  }
  /// Lock-free count of currently disabled pools — part of the fast lane's
  /// calm check (a disabled pool means §3.4 group semantics are live and
  /// every admission must go through the slow lane).
  std::size_t disabled_pool_count() const {
    return disabled_pool_count_.load();
  }

  struct BeginOutcome {
    PeriodId id = kInvalidPeriod;
    bool admitted = false;
    bool forced = false;  ///< admitted via the liveness override
    /// Admitted on the post-park second look (the in-monitor half of the
    /// lost-wake Dekker handshake): the period visited the waitlist but the
    /// caller never needs to sleep. Impossible when calls are serialized.
    bool woke_from_waitlist = false;
  };

  /// pp_begin. The record's id field is assigned by the registry.
  BeginOutcome begin_period(PeriodRecord record, double now);

  /// pp_end. Throws if the id is unknown. Returns the closed record.
  PeriodRecord end_period(PeriodId id, double now);

  /// Batched pp_end: removes and discharges every id first, then re-offers
  /// the freed capacity with ONE waitlist rescan for the whole batch (one
  /// release storm = one scheduling pass = one wake flush, instead of a
  /// rescan per end). Records are returned in id-argument order. Throws on
  /// the first unknown or never-admitted id, like end_period.
  std::vector<PeriodRecord> end_periods(const std::vector<PeriodId>& ids,
                                        double now);

  /// Cancels a period that is still waitlisted (native-runtime timeout /
  /// shutdown path). Returns false if the period was already admitted or
  /// unknown. Rescans afterwards: removing the waiter can re-enable a pool
  /// it had disabled (and thereby admit the remaining members).
  bool cancel_waiting(PeriodId id, double now);

  /// Re-offers freed capacity to the waitlist. The fast release lane calls
  /// this (under the core's slow mutex) when its Dekker check sees parked
  /// waiters or a disabled pool after a lock-free discharge.
  void rescan_release(double now);

  /// --- Orphan reclamation (lease/heartbeat) -------------------------------

  struct ReapOutcome {
    bool reaped = false;
    bool was_admitted = false;  ///< held load (vs parked on the waitlist)
    PeriodId period = kInvalidPeriod;
  };

  /// Reaps whatever period `thread` still holds (admitted: load returned,
  /// waiters rescanned; waitlisted: entry evicted). Driven by the native
  /// gate's thread-exit detection and the sim's task teardown. When
  /// `remember_waiter` is set, a reaped WAITLISTED period is remembered so a
  /// live waiter polling on it can observe the eviction (take_reclaimed).
  ReapOutcome reap_thread(sim::ThreadId thread, double now,
                          bool remember_waiter = false);

  /// Reaps every period whose lease is more than `max_epoch_age` epochs
  /// stale. Returns the number of periods reaped.
  std::size_t sweep(std::uint64_t max_epoch_age, double now,
                    bool remember_waiters = false);

  /// Refreshes the lease of the thread's active period (no-op when none).
  void heartbeat(sim::ThreadId thread);
  void advance_epoch() { epoch_.fetch_add(1); }
  std::uint64_t epoch() const { return epoch_.load(); }

  /// --- Starvation watchdog -------------------------------------------------

  /// Time-triggered escalation pass (the round-triggered pass runs inside
  /// every rescan). Returns true when any waiter moved a ladder rung.
  bool watchdog_tick(double now);

  /// Stall-triggered escalation: the substrate proved nothing else can make
  /// progress (all threads blocked), so waiting is futile regardless of the
  /// round/time triggers — escalate the head-most unexhausted waiter one
  /// rung immediately. Returns true when a waiter moved.
  bool watchdog_stalled(double now);

  /// Rejection / reclaim bookkeeping the substrates poll to surface errors:
  /// a rejected or reclaimed-while-waiting period never gets a Waker grant,
  /// so its (possibly still sleeping) owner must be able to learn its fate.
  bool is_rejected(PeriodId id) const { return rejected_.count(id) != 0; }
  bool take_rejection(PeriodId id);
  std::optional<PeriodId> take_rejection_for_thread(sim::ThreadId thread);
  /// Threads with an unconsumed rejection, in period-id order.
  std::vector<sim::ThreadId> rejected_threads() const;
  bool is_reclaimed(PeriodId id) const { return reclaimed_.count(id) != 0; }
  bool take_reclaimed(PeriodId id) { return reclaimed_.erase(id) != 0; }

  bool is_admitted(PeriodId id) const {
    const PeriodRecord* record = registry_.find(id);
    return record != nullptr && record->admitted;
  }

  const MonitorStats& stats() const { return stats_; }
  const ShardedWaitlist& waitlist() const { return waitlist_; }
  const ShardedRegistry& registry() const { return registry_; }
  /// Fast-lane access: the core's lock-free admit inserts pre-admitted
  /// records and its release claims calm records directly off the shards.
  ShardedRegistry& mutable_registry() { return registry_; }

  /// Wakes/evictions captured by a redirected WakeBatch for delivery after
  /// the caller releases its locks: substrate wake callbacks may re-enter
  /// the core (the sim engine's death-at-wake fault path reaps the dying
  /// thread from inside the wake), so they must never run under the slow
  /// mutex.
  struct PendingDelivery {
    std::vector<WakeGrant> wakes;
    std::vector<EvictNotice> evicts;
  };

  /// Invokes the wake/evict callbacks for a captured batch. Call WITHOUT
  /// the core's slow mutex held.
  void deliver(PendingDelivery batch);

  /// Scopes one logical monitor operation: wakes/evictions accumulated by
  /// nested calls are flushed when the outermost batch closes. Every public
  /// mutating entry point opens one, so direct users need not bother; the
  /// admission core opens a REDIRECTED one (outermost, under its slow
  /// mutex) so the callbacks can be invoked after the mutex is released.
  class WakeBatch {
   public:
    explicit WakeBatch(ProgressMonitor& monitor,
                       PendingDelivery* redirect = nullptr)
        : monitor_(monitor), redirect_(redirect) {
      ++monitor_.batch_depth_;
    }
    WakeBatch(const WakeBatch&) = delete;
    WakeBatch& operator=(const WakeBatch&) = delete;
    ~WakeBatch() {
      if (--monitor_.batch_depth_ != 0) return;
      if (redirect_ != nullptr) {
        redirect_->wakes = std::move(monitor_.pending_wakes_);
        redirect_->evicts = std::move(monitor_.pending_evicts_);
        monitor_.pending_wakes_.clear();
        monitor_.pending_evicts_.clear();
      } else {
        monitor_.flush_batch();
      }
    }

   private:
    ProgressMonitor& monitor_;
    PendingDelivery* redirect_;
  };

 private:
  void admit(PeriodId id);  ///< bookkeeping common to every admission
  void wake_entry(const Waitlist::Entry& entry, double now,
                  bool notify = true);
  void flush_batch();
  /// Re-evaluates the waitlist after load decreased.
  void rescan(double now);
  /// Reap implementation shared by reap_thread and sweep.
  ReapOutcome reap_period(PeriodId id, double now, bool remember_waiter);
  /// Round-triggered watchdog pass over the entries a rescan left parked.
  void watchdog_rounds(double now);
  /// Applies the next enabled ladder rung to the entry at `index`. Returns
  /// true when the entry left the waitlist (admitted or rejected).
  bool escalate(std::size_t index, double now);
  /// Group admission check for one disabled pool; admits and wakes the whole
  /// group when it fits. Returns true if the pool was re-enabled.
  bool try_admit_pool(sim::ProcessId process, bool force, double now);
  void disable_pool(sim::ProcessId process);
  void enable_pool(sim::ProcessId process);
  /// Emits one lifecycle event when a sink is attached.
  void trace(obs::EventKind kind, double now, const PeriodRecord& record);

  SchedulingPredicate* predicate_;
  ResourceMonitor* resources_;
  MonitorOptions options_;
  std::unique_ptr<WakeStrategy> strategy_;
  WakeFn waker_;
  BatchWakeFn batch_waker_;
  EvictFn evict_notifier_;
  obs::TraceSink* sink_ = nullptr;

  ShardedRegistry registry_;
  ShardedWaitlist waitlist_;
  std::set<sim::ProcessId> pools_;
  std::set<sim::ProcessId> disabled_pools_;
  std::atomic<std::size_t> disabled_pool_count_{0};
  MonitorStats stats_;

  std::atomic<std::uint64_t> epoch_{0};  ///< lease clock (advance_epoch)
  /// Unconsumed watchdog rejections, both directions (period↔thread).
  std::unordered_map<PeriodId, sim::ThreadId> rejected_;
  std::unordered_map<sim::ThreadId, PeriodId> rejected_by_thread_;
  /// Waitlisted periods reaped out from under a live waiter.
  std::unordered_set<PeriodId> reclaimed_;

  /// Batched wake/evict delivery (see WakeBatch).
  int batch_depth_ = 0;
  std::vector<WakeGrant> pending_wakes_;
  std::vector<EvictNotice> pending_evicts_;
};

}  // namespace rda::core
