#include "trace/generators.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::trace {

// --- ConcatSource ------------------------------------------------------------

ConcatSource::ConcatSource(std::vector<std::unique_ptr<TraceSource>> parts)
    : parts_(std::move(parts)) {}

bool ConcatSource::next(TraceRecord& out) {
  while (index_ < parts_.size()) {
    if (parts_[index_] && parts_[index_]->next(out)) return true;
    ++index_;
  }
  return false;
}

// --- RepeatSource ------------------------------------------------------------

RepeatSource::RepeatSource(Factory factory, std::size_t times)
    : factory_(std::move(factory)), remaining_(times) {
  RDA_CHECK(factory_ != nullptr);
}

bool RepeatSource::next(TraceRecord& out) {
  for (;;) {
    if (current_ && current_->next(out)) return true;
    if (remaining_ == 0) return false;
    --remaining_;
    current_ = factory_();
    RDA_CHECK(current_ != nullptr);
  }
}

// --- VectorSource ------------------------------------------------------------

VectorSource::VectorSource(std::vector<TraceRecord> records)
    : records_(std::move(records)) {}

bool VectorSource::next(TraceRecord& out) {
  if (index_ >= records_.size()) return false;
  out = records_[index_++];
  return true;
}

// --- RegionAccessSource ------------------------------------------------------

RegionAccessSource::RegionAccessSource(RegionSpec spec,
                                       std::uint64_t num_accesses,
                                       std::uint64_t rng_seed)
    : spec_(spec), remaining_(num_accesses), rng_(rng_seed) {
  RDA_CHECK_MSG(spec_.size_bytes >= spec_.access_granularity,
                "region smaller than one access");
  RDA_CHECK(spec_.access_granularity > 0);
}

std::uint64_t RegionAccessSource::pick_address() {
  const std::uint64_t words = spec_.size_bytes / spec_.access_granularity;
  std::uint64_t word = 0;
  switch (spec_.pattern) {
    case Pattern::kSequential:
      word = cursor_ % words;
      ++cursor_;
      break;
    case Pattern::kStrided: {
      const std::uint64_t stride_words =
          std::max<std::uint64_t>(1, spec_.stride / spec_.access_granularity);
      word = (cursor_ * stride_words) % words;
      ++cursor_;
      break;
    }
    case Pattern::kRandomUniform:
      word = rng_.next_below(words);
      break;
    case Pattern::kHotCold: {
      const std::uint64_t hot_words = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(static_cast<double>(words) *
                                        spec_.hot_fraction));
      if (rng_.next_bool(spec_.hot_probability)) {
        word = rng_.next_below(hot_words);
      } else {
        word = rng_.next_below(words);
      }
      break;
    }
  }
  return spec_.base + word * spec_.access_granularity;
}

bool RegionAccessSource::next(TraceRecord& out) {
  if (spec_.jump_pc != 0 && emitted_since_jump_ >= spec_.jump_period) {
    emitted_since_jump_ = 0;
    out.value = spec_.jump_pc;
    out.kind = RecordKind::kJump;
    return true;
  }
  if (remaining_ == 0) return false;
  --remaining_;
  ++emitted_since_jump_;
  out.value = pick_address();
  out.kind = rng_.next_bool(spec_.store_ratio) ? RecordKind::kStore
                                               : RecordKind::kLoad;
  return true;
}

// --- PairInteractionSource ---------------------------------------------------

PairInteractionSource::PairInteractionSource(std::uint64_t base,
                                             std::uint64_t num_records,
                                             std::uint64_t record_bytes,
                                             std::uint64_t max_pairs,
                                             std::uint64_t jump_pc)
    : base_(base),
      n_(num_records),
      record_bytes_(record_bytes),
      pairs_remaining_(max_pairs),
      jump_pc_(jump_pc) {
  RDA_CHECK_MSG(num_records >= 2, "need at least two interacting records");
  RDA_CHECK(record_bytes > 0);
}

std::uint64_t PairInteractionSource::addr_of(std::uint64_t index) const {
  return base_ + index * record_bytes_;
}

bool PairInteractionSource::next(TraceRecord& out) {
  if (pairs_remaining_ == 0) return false;
  switch (step_) {
    case 0:
      out = {addr_of(i_), RecordKind::kLoad};
      step_ = 1;
      return true;
    case 1:
      out = {addr_of(j_), RecordKind::kLoad};
      step_ = 2;
      return true;
    case 2:
      out = {addr_of(i_), RecordKind::kStore};
      step_ = jump_pc_ != 0 ? 3 : 0;
      if (step_ == 0) {
        --pairs_remaining_;
        if (++j_ >= n_) {
          ++i_;
          j_ = i_ + 1;
          if (j_ >= n_) {
            i_ = 0;
            j_ = 1;  // next interaction sweep
          }
        }
      }
      return true;
    default:  // 3: back-edge jump closing this pair's inner-loop trip
      out = {jump_pc_, RecordKind::kJump};
      step_ = 0;
      --pairs_remaining_;
      if (++j_ >= n_) {
        ++i_;
        j_ = i_ + 1;
        if (j_ >= n_) {
          i_ = 0;
          j_ = 1;
        }
      }
      return true;
  }
}

// --- GridSweepSource ---------------------------------------------------------

GridSweepSource::GridSweepSource(std::uint64_t base, std::uint64_t n,
                                 std::uint64_t cell_bytes, std::uint64_t sweeps,
                                 std::uint64_t jump_pc)
    : base_(base),
      n_(n),
      cell_bytes_(cell_bytes),
      sweeps_remaining_(sweeps),
      jump_pc_(jump_pc) {
  RDA_CHECK_MSG(n >= 3, "stencil needs at least a 3x3 grid");
  RDA_CHECK(cell_bytes > 0);
}

std::uint64_t GridSweepSource::addr_of(std::uint64_t row,
                                       std::uint64_t col) const {
  return base_ + (row * n_ + col) * cell_bytes_;
}

bool GridSweepSource::advance_cell() {
  if (++col_ >= n_ - 1) {
    col_ = 1;
    if (++row_ >= n_ - 1) {
      row_ = 1;
      if (sweeps_remaining_ > 0) --sweeps_remaining_;
      return sweeps_remaining_ > 0;
    }
  }
  return true;
}

bool GridSweepSource::next(TraceRecord& out) {
  if (sweeps_remaining_ == 0) return false;
  switch (step_) {
    case 0:
      out = {addr_of(row_ - 1, col_), RecordKind::kLoad};
      step_ = 1;
      return true;
    case 1:
      out = {addr_of(row_ + 1, col_), RecordKind::kLoad};
      step_ = 2;
      return true;
    case 2:
      out = {addr_of(row_, col_ - 1), RecordKind::kLoad};
      step_ = 3;
      return true;
    case 3:
      out = {addr_of(row_, col_ + 1), RecordKind::kLoad};
      step_ = 4;
      return true;
    case 4:
      out = {addr_of(row_, col_), RecordKind::kStore};
      step_ = jump_pc_ != 0 ? 5 : 0;
      if (step_ == 0) advance_cell();
      return true;
    default:  // 5: back-edge jump after finishing a cell
      out = {jump_pc_, RecordKind::kJump};
      step_ = 0;
      advance_cell();
      return true;
  }
}

// --- helpers -----------------------------------------------------------------

std::vector<TraceRecord> drain(TraceSource& source) {
  std::vector<TraceRecord> records;
  TraceRecord rec;
  while (source.next(rec)) records.push_back(rec);
  return records;
}

std::uint64_t count_records(TraceSource& source) {
  std::uint64_t count = 0;
  TraceRecord rec;
  while (source.next(rec)) ++count;
  return count;
}

}  // namespace rda::trace
