// Working-set-size prediction across input scales (§4.4, Fig. 12).
//
// The paper observes that a progress period's measured WSS grows with input
// size "not linearly ... but rather in the shape of a logarithmic curve",
// runs a logarithmic regression over the first three input sizes, and
// validates the prediction on the fourth (80–95 % accuracy). This module
// implements that fit plus a linear fallback, and the accuracy metric.
#pragma once

#include <span>
#include <string>

#include "util/stats.hpp"

namespace rda::predict {

/// y = a + b·ln(x). Fit via OLS on (ln x, y). All x must be positive.
struct LogFit {
  double a = 0.0;
  double b = 0.0;
  double r_squared = 0.0;

  double operator()(double x) const;
};

LogFit fit_log(std::span<const double> xs, std::span<const double> ys);

/// Prediction accuracy as the paper reports it: 1 − |pred − actual| / actual,
/// clamped to [0, 1]. (92 % accuracy ⇒ 8 % relative error.)
double prediction_accuracy(double predicted, double actual);

/// Which curve family a WssPredictor selected.
enum class FitFamily { kLogarithmic, kLinear };

/// Per-progress-period WSS predictor: fits both families on the training
/// points and keeps the one with the higher R², mirroring the paper's
/// observation-driven choice of the log curve.
class WssPredictor {
 public:
  /// xs: input sizes (e.g. molecule counts); ys: measured WSS in bytes.
  /// Requires >= 2 training points with positive xs.
  WssPredictor(std::span<const double> xs, std::span<const double> ys);

  double predict(double input_size) const;
  FitFamily family() const { return family_; }
  double r_squared() const;
  /// e.g. "wss(n) = -1.2e6 + 4.1e5*ln(n)  [R^2=0.998]"
  std::string describe() const;

 private:
  LogFit log_fit_{};
  util::LineFit line_fit_{};
  FitFamily family_ = FitFamily::kLogarithmic;
};

}  // namespace rda::predict
