// rda_sched_sim — simulate a Table-2 workload under a scheduling policy.
//
//   rda_sched_sim --workload BLAS-3 --policy strict
//   rda_sched_sim --workload Raytrace --policy all --quick
//   rda_sched_sim --workload Water_nsq --policy compromise --oversub 1.5
//
// Knobs for what-if studies: --cores, --llc-mb, --bw-gbs override the paper
// machine; --partition / --feedback / --gate-bw enable the extensions.
#include <cstdio>
#include <string>

#include "args.hpp"
#include "core/rda_scheduler.hpp"
#include "exp/harness.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;

exp::RunRow run_one(const workload::WorkloadSpec& spec,
                    const sim::EngineConfig& engine_cfg,
                    core::PolicyKind policy, const tools::Args& args) {
  if (policy == core::PolicyKind::kLinuxDefault && !args.has("partition") &&
      !args.has("feedback") && !args.has("gate-bw")) {
    exp::RunConfig cfg;
    cfg.engine = engine_cfg;
    cfg.policy = policy;
    return exp::run_workload(spec, cfg);
  }

  // Extension paths need direct gate construction.
  sim::Engine engine(engine_cfg);
  core::RdaOptions options;
  options.policy = policy;
  options.oversubscription = args.get_double("oversub", 2.0);
  options.fast_path = args.has("fast-path");
  options.partitioning.enable = args.has("partition");
  if (args.has("gate-bw")) {
    options.bandwidth_capacity = engine_cfg.machine.dram_bandwidth;
  }
  options.feedback.enable = args.has("feedback");
  core::RdaScheduler gate(
      static_cast<double>(engine_cfg.machine.llc_bytes), engine_cfg.calib,
      options);
  if (policy != core::PolicyKind::kLinuxDefault) engine.set_gate(&gate);
  workload::populate_engine(engine, spec, [&](sim::ProcessId pid) {
    gate.mark_pool(pid);
  });
  const sim::SimResult result = engine.run();

  exp::RunRow row;
  row.workload = spec.name;
  row.policy = core::to_string(policy);
  row.system_joules = result.system_joules();
  row.dram_joules = result.dram_joules;
  row.gflops = result.gflops();
  row.gflops_per_watt = result.gflops_per_watt();
  row.makespan = result.makespan;
  row.total_flops = result.total_flops;
  row.gate_blocks = result.gate_blocks;
  row.context_switches = result.context_switches;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rda;
  const tools::Args args(argc, argv);
  if (args.has("help")) {
    tools::usage(
        "usage: rda_sched_sim --workload NAME --policy "
        "default|strict|compromise|all\n"
        "  [--quick] [--oversub X=2] [--cores N] [--llc-mb M] [--bw-gbs B]\n"
        "  [--partition] [--feedback] [--gate-bw] [--fast-path]\n"
        "workloads: BLAS-1 BLAS-2 BLAS-3 Water_sp Water_nsq Ocean_cp "
        "Raytrace Volrend\n");
  }

  sim::EngineConfig engine;
  engine.machine = sim::MachineConfig::e5_2420();
  if (args.has("cores")) {
    engine.machine.cores = static_cast<int>(args.get_u64("cores", 12));
  }
  if (args.has("llc-mb")) {
    engine.machine.llc_bytes = util::MB(args.get_double("llc-mb", 15.0));
  }
  if (args.has("bw-gbs")) {
    engine.machine.dram_bandwidth = args.get_double("bw-gbs", 30.0) * 1e9;
  }

  const auto specs = workload::table2_workloads();
  workload::WorkloadSpec spec =
      workload::find_workload(specs, args.get("workload", "BLAS-3"));
  if (args.has("quick")) spec = workload::scale_workload(spec, 0.125, 4);

  const std::string policy_arg = args.get("policy", "all");
  std::vector<core::PolicyKind> policies;
  if (policy_arg == "default") {
    policies = {core::PolicyKind::kLinuxDefault};
  } else if (policy_arg == "strict") {
    policies = {core::PolicyKind::kStrict};
  } else if (policy_arg == "compromise") {
    policies = {core::PolicyKind::kCompromise};
  } else if (policy_arg == "all") {
    policies = {core::PolicyKind::kLinuxDefault, core::PolicyKind::kStrict,
                core::PolicyKind::kCompromise};
  } else {
    tools::usage("unknown --policy '" + policy_arg + "'\n");
  }

  std::printf("workload %s on %s (%d cores, %.1f MB LLC, %.0f GB/s)\n\n",
              spec.name.c_str(), engine.machine.name.c_str(),
              engine.machine.cores,
              util::bytes_to_mb(engine.machine.llc_bytes),
              engine.machine.dram_bandwidth / 1e9);

  util::Table table({"policy", "GFLOPS", "makespan [s]", "system J",
                     "DRAM J", "GFLOPS/W", "gate blocks"});
  for (const core::PolicyKind policy : policies) {
    const exp::RunRow row = run_one(spec, engine, policy, args);
    table.begin_row()
        .add_cell(row.policy)
        .add_cell(row.gflops, 2)
        .add_cell(row.makespan, 1)
        .add_cell(row.system_joules, 0)
        .add_cell(row.dram_joules, 0)
        .add_cell(row.gflops_per_watt, 3)
        .add_cell(row.gate_blocks);
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
