# Empty compiler generated dependencies file for fig10_gflops_per_watt.
# This may be replaced when dependencies are built.
