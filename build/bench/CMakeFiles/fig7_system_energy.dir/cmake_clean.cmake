file(REMOVE_RECURSE
  "CMakeFiles/fig7_system_energy.dir/fig7_system_energy.cpp.o"
  "CMakeFiles/fig7_system_energy.dir/fig7_system_energy.cpp.o.d"
  "CMakeFiles/fig7_system_energy.dir/fig_common.cpp.o"
  "CMakeFiles/fig7_system_energy.dir/fig_common.cpp.o.d"
  "fig7_system_energy"
  "fig7_system_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_system_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
