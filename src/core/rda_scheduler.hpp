// RdaScheduler — the paper's scheduling extension, packaged as a sim gate.
//
// Binds policy + resource monitor + scheduling predicate + progress monitor
// (the three components of paper Fig. 2) and implements sim::PhaseGate so the
// engine consults it at every marked phase boundary, exactly as the kernel
// extension intercepts pp_begin/pp_end.
//
// It also owns the cached-decision fast path evaluated in the Fig. 11
// overhead study: when a thread re-enters a period with the same demand and
// the global load table is unchanged since its own last call (and nobody is
// waiting), the admission decision is provably identical, so the "kernel
// entry" can be skipped and only the cheap fast-path cost is charged. The
// decision itself is still executed for accounting.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/feedback.hpp"
#include "core/policy.hpp"
#include "core/predicate.hpp"
#include "core/progress_monitor.hpp"
#include "core/resource_monitor.hpp"
#include "obs/sink.hpp"
#include "sim/calibration.hpp"
#include "sim/gate.hpp"

namespace rda::core {

/// §6 future-work extension: cache partitioning for streaming periods.
/// "If an application whose working set size is larger than the LLC is
///  scheduled (e.g., streaming applications), we can partition the cache and
///  give this application only a small portion ... because it would fetch
///  most data from main memory regardless."
struct PartitionOptions {
  bool enable = false;
  /// Fraction of LLC capacity granted to a larger-than-LLC period. The
  /// period is admitted with this reduced charge and confined to it, so
  /// normal periods co-run instead of waiting behind it.
  double streaming_fraction = 0.10;
};

struct RdaOptions {
  PolicyKind policy = PolicyKind::kStrict;
  /// Oversubscription factor x for RDA:Compromise (paper uses 2).
  double oversubscription = 2.0;
  /// Enable the cached-decision fast path (Fig. 11 second series).
  bool fast_path = false;
  PartitionOptions partitioning{};
  /// Multi-resource extension: when > 0, DRAM bandwidth becomes a second
  /// gated resource with this capacity (bytes/second); periods declaring a
  /// bandwidth demand must fit BOTH resources to be admitted.
  double bandwidth_capacity = 0.0;
  /// Counter-feedback extension: correct declared demands from observed
  /// per-period hardware counters.
  FeedbackOptions feedback{};
  MonitorOptions monitor{};
  /// Admission-lifecycle event sink (non-owning; nullptr = tracing off).
  obs::TraceSink* trace_sink = nullptr;
};

class RdaScheduler final : public sim::PhaseGate {
 public:
  /// `llc_capacity_bytes` seeds the resource monitor; `calib` provides the
  /// API call costs the simulator charges.
  RdaScheduler(double llc_capacity_bytes, const sim::Calibration& calib,
               RdaOptions options = {});

  /// Declares a process as a task-pool (§3.4 group pause semantics).
  void mark_pool(sim::ProcessId process);

  /// Attaches/detaches the lifecycle-event sink at runtime.
  void set_trace_sink(obs::TraceSink* sink);

  // sim::PhaseGate
  sim::BeginResult on_phase_begin(sim::ThreadId thread,
                                  sim::ProcessId process,
                                  const sim::PhaseSpec& phase,
                                  double now) override;
  sim::EndResult on_phase_end(sim::ThreadId thread, sim::ProcessId process,
                              const sim::PhaseSpec& phase,
                              const sim::PhaseObservation& observed,
                              double now) override;
  void attach(sim::ThreadWaker& waker) override;

  const MonitorStats& monitor_stats() const { return monitor_.stats(); }
  std::uint64_t fast_path_hits() const { return fast_path_hits_; }
  std::uint64_t partitioned_periods() const { return partitioned_periods_; }
  ResourceMonitor& resources() { return resources_; }
  const ProgressMonitor& monitor() const { return monitor_; }
  const SchedulingPolicy& policy() const { return *policy_; }
  const DemandCorrector& corrector() const { return corrector_; }

 private:
  struct ThreadCache {
    bool valid = false;
    double demand = -1.0;
    double bw_demand = -1.0;
    std::uint64_t version = 0;  ///< load-table version at our last call
  };

  bool fast_path_usable(sim::ThreadId thread, sim::ProcessId process,
                        double demand, double bw_demand) const;

  sim::Calibration calib_;
  RdaOptions options_;
  std::unique_ptr<SchedulingPolicy> policy_;
  ResourceMonitor resources_;
  SchedulingPredicate predicate_;
  ProgressMonitor monitor_;

  DemandCorrector corrector_;
  std::unordered_map<sim::ThreadId, PeriodId> active_period_;
  std::unordered_map<sim::ThreadId, ThreadCache> cache_;
  std::uint64_t fast_path_hits_ = 0;
  std::uint64_t partitioned_periods_ = 0;
};

}  // namespace rda::core
