// Reproduces paper Figure 11: runtime overhead of progress-period tracking
// at different granularities of the dgemm triple loop (n = 512):
//   none    — un-instrumented kernel,
//   outer   — the whole computation is ONE period,
//   middle  — 512 periods (one per middle-loop iteration),
//   inner   — 512^2 = 262,144 periods.
// The paper measures 0% / 19% / 59% overhead for outer/middle/inner. A
// single per-call cost cannot produce both 19% and 59% (they differ 160x per
// call), so we report two calibrated series that bracket the paper:
//   slow-path — every call enters the kernel extension (~9 us),
//   fast-path — identical repeated demands reuse the cached admission
//               decision (~55 ns) when the load table is unchanged.
// Both series agree with the paper's conclusion: track at the outermost
// loop.
//
// A second, NATIVE measurement runs a real dgemm through the real userspace
// AdmissionGate at the same three granularities.
#include <chrono>
#include <cstring>
#include <iostream>
#include <iterator>
#include <vector>

#include "blas/level3.hpp"
#include "core/rda_scheduler.hpp"
#include "exp/harness.hpp"
#include "obs/recorder.hpp"
#include "runtime/gate.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::util::MB;

constexpr std::size_t kN = 512;
constexpr double kTotalFlops = 2.0 * kN * kN * kN;
constexpr std::uint64_t kWss = 6815744;  // paper Fig. 4: MB(6.3) for n=512

/// Simulated dgemm split into `periods` equal marked phases.
double simulate(std::size_t periods, bool instrumented, bool fast_path) {
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  sim::Engine engine(cfg);

  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;  // paper: "strict policy active"
  options.fast_path = fast_path;
  core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                          cfg.calib, options);
  if (instrumented) engine.set_gate(&gate);

  sim::ProgramBuilder builder;
  for (std::size_t p = 0; p < periods; ++p) {
    builder.period("dgemm", kTotalFlops / static_cast<double>(periods), kWss,
                   ReuseLevel::kHigh);
  }
  const sim::ProcessId pid = engine.create_process();
  engine.add_thread(pid, builder.build());
  const sim::SimResult result = engine.run();
  return result.gflops();
}

/// Native dgemm (row-blocked triple loop) with real gate calls at the
/// requested loop depth. depth: 0 = none, 1 = outer, 2 = middle, 3 = inner.
/// `sink` attaches the observability layer (nullptr = tracing disabled, the
/// default-off configuration whose cost the traced-vs-untraced series
/// bounds).
double native_gflops(int depth, std::size_t n,
                     obs::TraceSink* sink = nullptr) {
  rt::GateConfig cfg;
  cfg.llc_capacity_bytes = static_cast<double>(MB(15));
  cfg.policy = core::PolicyKind::kStrict;
  cfg.trace_sink = sink;
  rt::AdmissionGate gate(cfg);

  std::vector<double> a(n * n, 1.0), b(n * n, 0.5), c(n * n, 0.0);
  const double demand = static_cast<double>(3 * n * n * sizeof(double));

  const auto t0 = std::chrono::steady_clock::now();
  core::PeriodId outer_id = core::kInvalidPeriod;
  if (depth == 1) {
    outer_id = gate.begin(ResourceKind::kLLC, demand, ReuseLevel::kHigh);
  }
  for (std::size_t i = 0; i < n; ++i) {
    core::PeriodId mid_id = core::kInvalidPeriod;
    if (depth == 2) {
      mid_id = gate.begin(ResourceKind::kLLC, demand, ReuseLevel::kHigh);
    }
    for (std::size_t j = 0; j < n; ++j) {
      core::PeriodId inner_id = core::kInvalidPeriod;
      if (depth == 3) {
        inner_id = gate.begin(ResourceKind::kLLC, demand, ReuseLevel::kHigh);
      }
      double acc = 0.0;
      const double* arow = &a[i * n];
      for (std::size_t l = 0; l < n; ++l) acc += arow[l] * b[l * n + j];
      c[i * n + j] = acc;
      if (depth == 3) gate.end(inner_id);
    }
    if (depth == 2) gate.end(mid_id);
  }
  if (depth == 1) gate.end(outer_id);
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  // Keep the result alive so the kernel is not optimized away.
  volatile double keep = c[n / 2];
  (void)keep;
  return 2.0 * static_cast<double>(n) * n * n / seconds / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  std::cout << "=== Figure 11: progress-tracking overhead on dgemm (n=512) "
               "===\n(paper: outer ~0%, middle ~19%, inner ~59%)\n\n";

  struct Row {
    const char* name;
    std::size_t periods;
    bool instrumented;
  };
  const Row rows[] = {
      {"no periods", 1, false},
      {"outer loop (1 period)", 1, true},
      {"middle loop (512 periods)", 512, true},
      {"inner loop (262144 periods)", 512 * 512, true},
  };

  // The simulated points are independent engines — fan them out. Slot 0 is
  // the uninstrumented base; slots 2k+1 / 2k+2 are row k's slow/fast series.
  std::vector<double> sim_gflops(1 + 2 * std::size(rows), 0.0);
  exp::run_cells(sim_gflops.size(), exp::parse_jobs(argc, argv),
                 [&](std::size_t cell) {
                   if (cell == 0) {
                     sim_gflops[0] = simulate(1, false, false);
                     return;
                   }
                   const Row& row = rows[(cell - 1) / 2];
                   const bool fast_path = (cell - 1) % 2 == 1;
                   // The inner-loop slow-path point simulates 524k kernel
                   // calls; skip the heavy series in --quick mode.
                   if (!fast_path && row.periods > 1000 && quick) return;
                   sim_gflops[cell] =
                       simulate(row.periods, row.instrumented, fast_path);
                 });

  const double base = sim_gflops[0];
  util::Table table({"granularity", "GFLOPS (slow path)", "overhead",
                     "GFLOPS (fast path)", "overhead"});
  for (std::size_t r = 0; r < std::size(rows); ++r) {
    const Row& row = rows[r];
    const double slow = sim_gflops[1 + 2 * r];
    const double fast = sim_gflops[2 + 2 * r];
    auto overhead = [&](double gflops) {
      return gflops > 0.0
                 ? std::to_string(
                       static_cast<int>(100.0 * (base / gflops - 1.0))) + "%"
                 : std::string("skipped");
    };
    table.begin_row()
        .add_cell(row.name)
        .add_cell(slow > 0.0 ? std::to_string(slow).substr(0, 5)
                             : std::string("(--quick)"))
        .add_cell(slow > 0.0 ? overhead(slow) : std::string("-"))
        .add_cell(fast, 2)
        .add_cell(overhead(fast));
  }
  std::cout << table.render() << "\n";

  std::cout << "--- native userspace gate on a real dgemm (n="
            << (quick ? 128 : 384) << ") ---\n";
  const std::size_t n = quick ? 128 : 384;
  util::Table native({"granularity", "GFLOPS", "overhead"});
  // Warm up (page faults, frequency), then best of three to suppress
  // scheduling noise on shared CI machines.
  native_gflops(0, n);
  auto best_of = [&](int depth) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::max(best, native_gflops(depth, n));
    }
    return best;
  };
  const double native_base = best_of(0);
  for (int depth = 0; depth <= 3; ++depth) {
    static const char* kNames[] = {"no periods", "outer", "middle", "inner"};
    const double gflops = depth == 0 ? native_base : best_of(depth);
    native.begin_row()
        .add_cell(kNames[depth])
        .add_cell(gflops, 3)
        .add_cell(std::to_string(static_cast<int>(
                      100.0 * (native_base / gflops - 1.0))) +
                  "%");
  }
  std::cout << native.render() << "\n";

  // Observability-layer cost at the chattiest granularity that still makes
  // sense (inner loop: n^2 periods, 2 events per period). "off" is the
  // default null-sink configuration — the if (sink_) branch is the entire
  // cost — and "recorder" pays the ring push + counter update per event.
  std::cout << "--- tracing overhead (native gate, inner loop, n=" << n
            << ") ---\n";
  auto best_traced = [&](obs::TraceSink* sink) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::max(best, native_gflops(3, n, sink));
    }
    return best;
  };
  const double untraced = best_traced(nullptr);
  obs::EventRecorder recorder(1 << 18);
  const double traced = best_traced(&recorder);
  util::Table tracing({"tracing", "GFLOPS", "overhead vs off"});
  tracing.begin_row().add_cell("off (null sink)").add_cell(untraced, 3)
      .add_cell("-");
  tracing.begin_row().add_cell("recorder").add_cell(traced, 3)
      .add_cell(std::to_string(static_cast<int>(
                    100.0 * (untraced / traced - 1.0))) + "%");
  std::cout << tracing.render() << "recorded "
            << recorder.total_recorded() << " events ("
            << recorder.dropped() << " dropped)\n"
            << "\nconclusion (matches paper §4.3): wrap each kernel at the "
               "outermost loop level.\n";
  return 0;
}
