#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rda::sim {

namespace {

/// Rate under a queueing factor q applied to the miss stall.
PhaseRate rate_with_queueing(const Calibration& calib, ReuseLevel reuse,
                             double resident_fraction, double q) {
  const double f = std::clamp(resident_fraction, 0.0, 1.0);
  const double stream_mpf = calib.stream_misses_per_flop(reuse);
  const double reuse_mpf = calib.reuse_misses_per_flop(reuse) * (1.0 - f);
  const double mpf = stream_mpf + reuse_mpf;
  const double time_per_flop = calib.flop_time() + mpf * calib.miss_stall * q;

  PhaseRate rate;
  rate.flops_per_sec = 1.0 / time_per_flop;
  rate.dram_bytes_per_sec = rate.flops_per_sec * mpf * calib.line_bytes;
  rate.residency_bytes_per_sec =
      rate.flops_per_sec * reuse_mpf * calib.line_bytes * calib.fill_efficiency;
  rate.streaming_bytes_per_sec =
      rate.flops_per_sec * stream_mpf * calib.line_bytes;
  return rate;
}

}  // namespace

PhaseRate compute_rate(const Calibration& calib, ReuseLevel reuse,
                       double resident_fraction) {
  return rate_with_queueing(calib, reuse, resident_fraction, 1.0);
}

std::vector<PhaseRate> compute_rates_capped(
    const Calibration& calib, const std::vector<RateRequest>& requests,
    double bandwidth) {
  std::vector<PhaseRate> rates;
  RateSolver solver;
  solver.solve(calib, requests, bandwidth, rates);
  return rates;
}

double RateSolver::aggregate_traffic(const Calibration& calib,
                                     double q) const {
  // Same expression tree as rate_with_queueing's dram_bytes_per_sec:
  // miss_seconds is (mpf * miss_stall), so flop_time + miss_seconds * q
  // reproduces flop_time + mpf * miss_stall * q bit-for-bit.
  double total = 0.0;
  for (const Term& t : terms_) {
    const double time_per_flop = calib.flop_time() + t.miss_seconds * q;
    total += 1.0 / time_per_flop * t.mpf * calib.line_bytes;
  }
  return total;
}

void RateSolver::solve(const Calibration& calib,
                       const std::vector<RateRequest>& requests,
                       double bandwidth, std::vector<PhaseRate>& out) {
  RDA_CHECK(bandwidth > 0.0);
  terms_.clear();
  terms_.reserve(requests.size());
  for (const RateRequest& r : requests) {
    const double f = std::clamp(r.resident_fraction, 0.0, 1.0);
    Term t;
    t.mpf = calib.stream_misses_per_flop(r.reuse) +
            calib.reuse_misses_per_flop(r.reuse) * (1.0 - f);
    t.miss_seconds = t.mpf * calib.miss_stall;
    terms_.push_back(t);
  }

  double q = 1.0;
  if (aggregate_traffic(calib, 1.0) > bandwidth) {
    // Aggregate traffic is strictly decreasing in q; bracket then bisect.
    double lo = 1.0, hi = 2.0;
    while (aggregate_traffic(calib, hi) > bandwidth && hi < 1e6) {
      hi *= 2.0;
    }
    for (int iter = 0; iter < 60 && hi - lo > 1e-9 * hi; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (aggregate_traffic(calib, mid) > bandwidth) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    q = hi;
  }
  out.clear();
  out.reserve(requests.size());
  for (const RateRequest& r : requests) {
    out.push_back(rate_with_queueing(calib, r.reuse, r.resident_fraction, q));
  }
}

}  // namespace rda::sim
