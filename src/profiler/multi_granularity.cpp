#include "profiler/multi_granularity.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::prof {

MultiGranularityProfiler::MultiGranularityProfiler(
    MultiGranularityConfig config)
    : config_(std::move(config)) {
  if (!config_.windows.empty()) {
    ladder_ = config_.windows;
  } else {
    RDA_CHECK(config_.levels >= 1);
    RDA_CHECK(config_.ladder_ratio >= 2);
    std::uint64_t w = config_.base_window;
    for (int level = 0; level < config_.levels && w >= 1024; ++level) {
      ladder_.push_back(w);
      w /= static_cast<std::uint64_t>(config_.ladder_ratio);
    }
  }
  RDA_CHECK_MSG(!ladder_.empty(), "empty window ladder");
  // Coarse-to-fine order is what the merge step assumes.
  std::sort(ladder_.begin(), ladder_.end(), std::greater<>());
}

MultiGranularityReport MultiGranularityProfiler::profile(
    const std::function<std::unique_ptr<trace::TraceSource>()>& make_source)
    const {
  MultiGranularityReport report;

  for (const std::uint64_t window : ladder_) {
    WindowConfig wcfg;
    wcfg.window_accesses = window;
    wcfg.hot_threshold = config_.hot_threshold;
    const auto source = make_source();
    RDA_CHECK(source != nullptr);
    const std::vector<WindowStats> windows =
        WindowAnalyzer(wcfg).analyze(*source);
    const std::vector<DetectedPeriod> detected =
        PeriodDetector(config_.detector).detect(windows);

    std::vector<GranularPeriod> normalized;
    normalized.reserve(detected.size());
    for (const DetectedPeriod& p : detected) {
      GranularPeriod g;
      g.window_accesses = window;
      g.first_access = p.first_window * window;
      g.last_access = (p.last_window + 1) * window;
      g.period = p;
      normalized.push_back(std::move(g));
    }
    report.per_granularity.emplace_back(window, normalized);
  }

  report.periods =
      merge_coarse_to_fine(report.per_granularity, config_.overlap_tolerance);
  return report;
}

double covered_fraction(const GranularPeriod& candidate,
                        const std::vector<GranularPeriod>& kept) {
  if (candidate.span() == 0) return 1.0;
  // Clip kept periods to the candidate and take the length of their interval
  // UNION: kept periods from different granularities may overlap each other,
  // and summing raw intersections would double-count the overlap, overstate
  // coverage, and wrongly reject finer candidates.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> clipped;
  clipped.reserve(kept.size());
  for (const GranularPeriod& k : kept) {
    const std::uint64_t lo = std::max(candidate.first_access, k.first_access);
    const std::uint64_t hi = std::min(candidate.last_access, k.last_access);
    if (hi > lo) clipped.emplace_back(lo, hi);
  }
  std::sort(clipped.begin(), clipped.end());
  std::uint64_t covered = 0;
  std::uint64_t reach = candidate.first_access;
  for (const auto& [lo, hi] : clipped) {
    const std::uint64_t from = std::max(lo, reach);
    if (hi > from) covered += hi - from;
    reach = std::max(reach, hi);
  }
  return static_cast<double>(covered) / static_cast<double>(candidate.span());
}

std::vector<GranularPeriod> merge_coarse_to_fine(
    const std::vector<std::pair<std::uint64_t, std::vector<GranularPeriod>>>&
        per_granularity,
    double overlap_tolerance) {
  // Keep a finer period only where coarser periods left the region
  // unexplained.
  std::vector<GranularPeriod> merged;
  for (const auto& [window, found] : per_granularity) {
    (void)window;
    for (const GranularPeriod& candidate : found) {
      if (covered_fraction(candidate, merged) <= overlap_tolerance) {
        merged.push_back(candidate);
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const GranularPeriod& a, const GranularPeriod& b) {
              return a.first_access < b.first_access;
            });
  return merged;
}

}  // namespace rda::prof
