#include "core/registry.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace rda::core {
namespace {

PeriodRecord record_for(sim::ThreadId thread, double demand = 1000.0) {
  PeriodRecord r;
  r.thread = thread;
  r.process = thread / 2;
  r.set_single(ResourceKind::kLLC, demand);
  r.reuse = ReuseLevel::kHigh;
  r.label = "test";
  return r;
}

TEST(PeriodRegistry, InsertAssignsUniqueIds) {
  PeriodRegistry reg;
  const PeriodId a = reg.insert(record_for(1));
  const PeriodId b = reg.insert(record_for(2));
  EXPECT_NE(a, kInvalidPeriod);
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.active_count(), 2u);
}

TEST(PeriodRegistry, FindReturnsStoredRecord) {
  PeriodRegistry reg;
  const PeriodId id = reg.insert(record_for(3, 555.0));
  const PeriodRecord* found = reg.find(id);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->thread, 3u);
  EXPECT_DOUBLE_EQ(found->primary_demand(), 555.0);
  EXPECT_DOUBLE_EQ(found->demand_for(ResourceKind::kLLC), 555.0);
  EXPECT_DOUBLE_EQ(found->demand_for(ResourceKind::kMemBandwidth), 0.0);
  EXPECT_EQ(found->id, id);
  EXPECT_EQ(reg.find(9999), nullptr);
}

TEST(PeriodRegistry, RemoveReturnsAndErases) {
  PeriodRegistry reg;
  const PeriodId id = reg.insert(record_for(4));
  const PeriodRecord removed = reg.remove(id);
  EXPECT_EQ(removed.thread, 4u);
  EXPECT_EQ(reg.active_count(), 0u);
  EXPECT_EQ(reg.find(id), nullptr);
}

TEST(PeriodRegistry, DoubleEndDetected) {
  PeriodRegistry reg;
  const PeriodId id = reg.insert(record_for(5));
  reg.remove(id);
  EXPECT_THROW(reg.remove(id), util::CheckFailure);
}

TEST(PeriodRegistry, UnknownIdDetected) {
  PeriodRegistry reg;
  EXPECT_THROW(reg.remove(42), util::CheckFailure);
}

TEST(PeriodRegistry, PeriodsDoNotNestPerThread) {
  PeriodRegistry reg;
  reg.insert(record_for(6));
  EXPECT_THROW(reg.insert(record_for(6)), util::CheckFailure);
}

TEST(PeriodRegistry, ThreadCanStartNewPeriodAfterEnd) {
  PeriodRegistry reg;
  const PeriodId first = reg.insert(record_for(7));
  reg.remove(first);
  const PeriodId second = reg.insert(record_for(7));
  EXPECT_NE(first, second);  // ids are never reused
}

TEST(PeriodRegistry, ActiveForThread) {
  PeriodRegistry reg;
  const PeriodId id = reg.insert(record_for(8));
  EXPECT_EQ(reg.active_for_thread(8), id);
  EXPECT_FALSE(reg.active_for_thread(9).has_value());
  reg.remove(id);
  EXPECT_FALSE(reg.active_for_thread(8).has_value());
}

TEST(PeriodRegistry, NegativeDemandRejected) {
  PeriodRegistry reg;
  EXPECT_THROW(reg.insert(record_for(10, -1.0)), util::CheckFailure);
}

TEST(PeriodRegistry, SnapshotListsAllActive) {
  PeriodRegistry reg;
  reg.insert(record_for(11));
  reg.insert(record_for(12));
  const auto snapshot = reg.snapshot();
  EXPECT_EQ(snapshot.size(), 2u);
}

}  // namespace
}  // namespace rda::core
