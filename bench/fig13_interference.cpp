// Reproduces paper Figure 13: aggregate GFLOPS of the largest water_nsquared
// progress period when 1, 6, or 12 concurrent instances run under the Linux
// default scheduler, for input sizes 512, 3375, 8000, and 32768 molecules.
//
// Paper shapes to reproduce:
//   * 512 / 3375: scale well up to 12 instances (the LLC is barely used),
//   * 8000: scales to 6 instances, then drops sharply at 12 (6 working sets
//     fit the 15 MB LLC, 12 do not),
//   * 32768: flat from 6 to 12 (memory-bandwidth bound either way).
#include <cstring>
#include <iostream>
#include <vector>

#include "exp/harness.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/trace_models.hpp"

namespace {

using namespace rda;

double run_instances(std::uint64_t molecules, int instances,
                     double flop_scale) {
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  sim::Engine engine(cfg);
  for (int i = 0; i < instances; ++i) {
    sim::PhaseProgram program =
        workload::wnsq_largest_pp_program(molecules);
    for (sim::PhaseSpec& p : program.phases) p.flops *= flop_scale;
    const sim::ProcessId pid = engine.create_process();
    engine.add_thread(pid, program);
  }
  return engine.run().gflops();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const double flop_scale = quick ? 0.1 : 1.0;
  std::cout << "=== Figure 13: LLC interference for the largest "
               "water_nsquared period ===\n"
               "(aggregate GFLOPS under the default scheduler; paper: 8000 "
               "drops 33->20 from 6 to 12 instances, 32768 is flat)\n\n";

  const std::vector<std::uint64_t> inputs = {512, 3375, 8000, 32768};
  const std::vector<int> instance_counts = {1, 6, 12};

  // All 12 (input, instance-count) cells are independent simulations; fan
  // them out and fill the table from the index-ordered results.
  std::vector<double> gflops(inputs.size() * instance_counts.size());
  exp::run_cells(gflops.size(), exp::parse_jobs(argc, argv),
                 [&](std::size_t cell) {
                   const std::size_t i = cell / instance_counts.size();
                   const std::size_t c = cell % instance_counts.size();
                   gflops[cell] =
                       run_instances(inputs[i], instance_counts[c], flop_scale);
                 });

  util::Table table({"molecules", "WSS/instance [MB]", "1 inst", "6 inst",
                     "12 inst"});
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    table.begin_row()
        .add_cell(static_cast<std::uint64_t>(inputs[i]))
        .add_cell(util::bytes_to_mb(workload::wnsq_pp1_wss(inputs[i])), 2);
    for (std::size_t c = 0; c < instance_counts.size(); ++c) {
      table.add_cell(gflops[i * instance_counts.size() + c], 1);
    }
  }
  std::cout << table.render()
            << "\nreading: 6x{8000-molecule} working sets fit the 15 MB LLC, "
               "12 do not; at 32768 the run is DRAM-bandwidth bound from 6 "
               "instances on.\n";
  return 0;
}
