
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/pp.cpp" "src/api/CMakeFiles/rda_api.dir/pp.cpp.o" "gcc" "src/api/CMakeFiles/rda_api.dir/pp.cpp.o.d"
  "/root/repo/src/api/validate.cpp" "src/api/CMakeFiles/rda_api.dir/validate.cpp.o" "gcc" "src/api/CMakeFiles/rda_api.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/rda_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
