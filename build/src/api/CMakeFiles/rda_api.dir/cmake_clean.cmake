file(REMOVE_RECURSE
  "CMakeFiles/rda_api.dir/pp.cpp.o"
  "CMakeFiles/rda_api.dir/pp.cpp.o.d"
  "CMakeFiles/rda_api.dir/validate.cpp.o"
  "CMakeFiles/rda_api.dir/validate.cpp.o.d"
  "librda_api.a"
  "librda_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
