// BLAS level-2 kernels (matrix–vector): dgemvN, dgemvT, dtrmv, dtrsv.
//
// The paper's BLAS-2 workload (Table 2): medium cache reuse — the matrix is
// streamed once, the vectors are reused. All matrices are dense row-major
// with leading dimension == column count.
#pragma once

#include <cstddef>
#include <span>

namespace rda::blas {

/// y := alpha*A*x + beta*y, A is m×n row-major.
void dgemv_n(std::size_t m, std::size_t n, double alpha,
             std::span<const double> a, std::span<const double> x, double beta,
             std::span<double> y);

/// y := alpha*A^T*x + beta*y, A is m×n row-major (y has n elements).
void dgemv_t(std::size_t m, std::size_t n, double alpha,
             std::span<const double> a, std::span<const double> x, double beta,
             std::span<double> y);

/// x := U*x with U the upper triangle (incl. diagonal) of the n×n matrix a.
void dtrmv_upper(std::size_t n, std::span<const double> a,
                 std::span<double> x);

/// Solves U*x = b in place (x holds b on entry, the solution on exit);
/// U upper triangular, non-unit diagonal.
void dtrsv_upper(std::size_t n, std::span<const double> a,
                 std::span<double> x);

inline double dgemv_flops(std::size_t m, std::size_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n);
}
inline double dtrmv_flops(std::size_t n) {
  return static_cast<double>(n) * static_cast<double>(n);
}
inline double dtrsv_flops(std::size_t n) {
  return static_cast<double>(n) * static_cast<double>(n);
}

}  // namespace rda::blas
