// Invariant checking that stays on in release builds.
//
// Simulation correctness depends on conservation invariants (occupancy sums,
// non-negative loads); a silently-corrupt state produces plausible-looking
// but wrong Joules. RDA_CHECK aborts with location info instead.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rda::util {

/// Thrown when an RDA_CHECK fails; carries the failing expression and site.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "RDA_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace rda::util

/// Always-on invariant check. Throws CheckFailure (tests can assert on it).
#define RDA_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::rda::util::check_failed(#expr, __FILE__, __LINE__, std::string()); \
    }                                                                       \
  } while (false)

/// Invariant check with a formatted context message.
#define RDA_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream rda_check_os;                                   \
      rda_check_os << msg;                                               \
      ::rda::util::check_failed(#expr, __FILE__, __LINE__,               \
                                rda_check_os.str());                     \
    }                                                                    \
  } while (false)
