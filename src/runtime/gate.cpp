#include "runtime/gate.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace rda::rt {

namespace {

core::AdmissionConfig to_core_config(const GateConfig& config) {
  core::AdmissionConfig c;
  c.llc_capacity_bytes = config.llc_capacity_bytes;
  c.bandwidth_capacity = config.bandwidth_capacity;
  c.energy_capacity_watts = config.energy_capacity_watts;
  c.policy = config.policy;
  c.oversubscription = config.oversubscription;
  c.resource_policies = config.resource_policies;
  c.combiner = config.combiner;
  c.fast_path = config.fast_path;
  c.partitioning = config.partitioning;
  c.feedback = config.feedback;
  c.monitor = config.monitor;
  c.trace_sink = config.trace_sink;
  c.fault_injector = config.fault_injector;
  return c;
}

void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Gates opted into reap_on_thread_exit. Deliberately leaked (never
/// destroyed): the thread_local exit guards of detached threads can run
/// after static destructors, and must still find a live registry.
struct ExitReapRegistry {
  std::mutex mu;
  std::vector<AdmissionGate*> gates;
};

ExitReapRegistry& exit_registry() {
  static ExitReapRegistry* r = new ExitReapRegistry;
  return *r;
}

void register_for_exit_reap(AdmissionGate* gate) {
  ExitReapRegistry& r = exit_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.gates.push_back(gate);
}

void deregister_for_exit_reap(AdmissionGate* gate) {
  ExitReapRegistry& r = exit_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.gates.erase(std::remove(r.gates.begin(), r.gates.end(), gate),
                r.gates.end());
}

/// Runs at thread exit and reaps the thread from every registered gate. The
/// registry lock is held across the reaps so a gate mid-destruction (which
/// deregisters first) can never be reached half-dead.
struct ThreadExitGuard {
  std::uint32_t tid = 0;
  ~ThreadExitGuard() {
    ExitReapRegistry& r = exit_registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (AdmissionGate* gate : r.gates) gate->reap_thread(tid);
  }
};

void arm_thread_exit_guard(std::uint32_t tid) {
  thread_local ThreadExitGuard guard{tid};
  guard.tid = tid;  // idempotent; also silences unused-variable concerns
}

}  // namespace

AdmissionGate::AdmissionGate(GateConfig config)
    : config_(config),
      core_(to_core_config(config)),
      epoch_(std::chrono::steady_clock::now()) {
  // The kernel wake event: flag each granted thread and ping the sleepers
  // once per batch. The core invokes this AFTER releasing its slow mutex,
  // possibly from several releasing threads at once — wait_mu_ serializes
  // the map inserts and the injector consults. With an injector attached
  // the notification itself becomes a fault site: a lost wake drops the
  // flag entirely (sliced waiters recover the admission core-side); a
  // delayed wake sets the flag but swallows the ping (the next slice poll
  // finds it).
  core_.set_batch_waker(
      [this](const std::vector<core::ProgressMonitor::WakeGrant>& grants) {
        bool ping = false;
        wait_channel_dirty_.store(true, std::memory_order_release);
        {
          std::lock_guard<std::mutex> lock(wait_mu_);
          for (const core::ProgressMonitor::WakeGrant& g : grants) {
            const std::uint32_t token = static_cast<std::uint32_t>(g.thread);
            if (config_.fault_injector != nullptr) {
              const fault::FaultSpec* fired =
                  config_.fault_injector->consult(fault::Hook::kWake,
                                                  g.thread);
              if (fired != nullptr) {
                if (fired->kind == fault::FaultKind::kLostWake) {
                  lost_wakes_.fetch_add(1, std::memory_order_relaxed);
                  continue;
                }
                if (fired->kind == fault::FaultKind::kDelayedWake) {
                  granted_[token] = g.period;
                  continue;
                }
              }
            }
            granted_[token] = g.period;
            ping = true;
          }
        }
        if (ping) cv_.notify_all();
      });
  // Waiters evicted WITHOUT a grant (watchdog rung 3, reaped off the
  // waitlist): record the verdict and rouse the sleeper so it observes the
  // error instead of sleeping to its timeout. This channel is what lets
  // end()/sweep() stay notification-free — every fate transition pings.
  core_.set_evict_notifier(
      [this](const std::vector<core::ProgressMonitor::EvictNotice>& notices) {
        wait_channel_dirty_.store(true, std::memory_order_release);
        {
          std::lock_guard<std::mutex> lock(wait_mu_);
          for (const core::ProgressMonitor::EvictNotice& n : notices) {
            evicted_[static_cast<std::uint32_t>(n.thread)] = {n.period,
                                                              n.reason};
          }
        }
        cv_.notify_all();
      });
  if (config_.reap_on_thread_exit) register_for_exit_reap(this);
}

AdmissionGate::~AdmissionGate() {
  if (config_.reap_on_thread_exit) deregister_for_exit_reap(this);
}

std::uint32_t AdmissionGate::self_id() {
  // thread_local slot token: assigned once per OS thread, never recycled
  // within the process, shared across all gates (the token only has to
  // identify the thread, not the gate).
  static std::atomic<std::uint32_t> next_token{1};
  thread_local const std::uint32_t token =
      next_token.fetch_add(1, std::memory_order_relaxed);
  return token;
}

double AdmissionGate::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::optional<core::PeriodId> AdmissionGate::begin_impl(
    std::vector<core::ResourceDemand> demands, ReuseLevel reuse,
    std::string label, WaitMode mode, std::chrono::nanoseconds timeout) {
  const std::uint32_t tid = self_id();
  if (config_.reap_on_thread_exit) arm_thread_exit_guard(tid);

  core::AdmitRequest request;
  request.thread = tid;
  // Default: every thread is its own singleton group, so pool semantics
  // never trigger unless join_group was called.
  request.process = tid;
  if (wait_channel_dirty_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(wait_mu_);
    // Scrub leftovers from the thread's previous period: a recovery path
    // may have returned before its (injected-away or late) grant landed.
    // Anything present now predates the period this begin creates.
    granted_.erase(tid);
    evicted_.erase(tid);
    const auto it = groups_.find(tid);
    if (it != groups_.end()) request.process = it->second;
  }
  request.demands = std::move(demands);
  request.reuse = reuse;
  request.label = std::move(label);

  const core::AdmitTicket ticket =
      core_.admit(std::move(request), now_seconds());
  if (ticket.admitted) {
    if (ticket.woke_from_waitlist) {
      no_sleep_blocks_.fetch_add(1, std::memory_order_relaxed);
    }
    return ticket.id;
  }

  if (mode == WaitMode::kTry) {
    switch (core_.try_withdraw(ticket.id, now_seconds())) {
      case core::WithdrawResult::kCancelled:
        return std::nullopt;
      case core::WithdrawResult::kAlreadyAdmitted:
        // The grant won the race between admit() returning and the
        // withdraw; the capacity is charged — the caller owns the period.
        consume_grant(tid, ticket.id);
        return ticket.id;
      case core::WithdrawResult::kGone:
        // Rejected or reclaimed before we could withdraw; consume the fate
        // so it cannot leak into the thread's next begin.
        (void)core_.take_rejection(ticket.id);
        (void)core_.take_reclaimed(ticket.id);
        return std::nullopt;
    }
    return std::nullopt;  // unreachable
  }

  // One logical wait, however many slices it takes (wait_slices_ counts
  // those separately — the old per-slice accounting double-counted).
  waits_.fetch_add(1, std::memory_order_relaxed);
  const double wait_start = now_seconds();
  const WaitOutcome outcome = hardened()
                                  ? hardened_wait(tid, ticket.id, mode, timeout)
                                  : plain_wait(tid, ticket.id, mode, timeout);
  atomic_add(total_wait_seconds_, now_seconds() - wait_start);
  if (outcome.failure != nullptr && mode == WaitMode::kBlocking) {
    throw AdmissionRejected(ticket.id, outcome.failure);
  }
  return outcome.id;
}

AdmissionGate::WaitOutcome AdmissionGate::plain_wait(
    std::uint32_t tid, core::PeriodId id, WaitMode mode,
    std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(wait_mu_);
  // Paper-faithful cooperative path: one predicate wait. Grants AND
  // evictions ping cv_, so the predicate covers both and no fate can slip
  // past a sleeping waiter.
  const auto ready = [&] {
    const auto g = granted_.find(tid);
    if (g != granted_.end() && g->second == id) return true;
    const auto e = evicted_.find(tid);
    return e != evicted_.end() && e->second.first == id;
  };
  bool woke = true;
  if (mode == WaitMode::kBlocking) {
    cv_.wait(lock, ready);
  } else {
    woke = cv_.wait_for(lock, timeout, ready);
  }
  if (woke) {
    const auto g = granted_.find(tid);
    if (g != granted_.end() && g->second == id) {
      granted_.erase(g);
      return {id, nullptr};
    }
    const auto e = evicted_.find(tid);
    const char* reason = e->second.second;
    evicted_.erase(e);
    return {std::nullopt, reason};
  }
  // Timed out without a verdict. The withdraw races any in-flight grant;
  // the core arbitrates.
  lock.unlock();
  switch (core_.try_withdraw(id, now_seconds())) {
    case core::WithdrawResult::kCancelled:
      return {std::nullopt, nullptr};  // plain timeout
    case core::WithdrawResult::kAlreadyAdmitted:
      consume_grant(tid, id);
      return {id, nullptr};
    case core::WithdrawResult::kGone:
      break;
  }
  // Rejected or reclaimed while we slept: consume the fate (timed callers
  // report nullopt, they never throw).
  (void)core_.take_rejection(id);
  (void)core_.take_reclaimed(id);
  {
    std::lock_guard<std::mutex> relock(wait_mu_);
    const auto e = evicted_.find(tid);
    if (e != evicted_.end() && e->second.first == id) evicted_.erase(e);
  }
  return {std::nullopt, nullptr};
}

AdmissionGate::WaitOutcome AdmissionGate::hardened_wait(
    std::uint32_t tid, core::PeriodId id, WaitMode mode,
    std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  double slice = config_.retry.initial_slice_seconds;
  const bool timed_watchdog = config_.monitor.watchdog.enable &&
                              config_.monitor.watchdog.max_wait_seconds > 0.0;
  for (;;) {
    // Fate checks, in precedence order: an explicit grant wins, then the
    // terminal verdicts, then the lost-wake recovery probe. Channel state
    // under wait_mu_; core probes outside it (the core locks internally).
    {
      std::lock_guard<std::mutex> lock(wait_mu_);
      const auto g = granted_.find(tid);
      if (g != granted_.end()) {
        if (g->second == id) {
          granted_.erase(g);
          return {id, nullptr};
        }
        granted_.erase(g);  // stale: late delivery for a recovered period
      }
      const auto e = evicted_.find(tid);
      if (e != evicted_.end()) {
        if (e->second.first == id) {
          const char* reason = e->second.second;
          evicted_.erase(e);
          return {std::nullopt, reason};
        }
        evicted_.erase(e);  // stale
      }
    }
    if (core_.take_rejection(id)) {
      return {std::nullopt, "starvation watchdog evicted the request"};
    }
    if (core_.take_reclaimed(id)) {
      return {std::nullopt, "waitlisted period was reclaimed"};
    }
    if (core_.is_admitted(id)) {
      // Admitted core-side but no grant arrived (injected loss, or the
      // delivery is still in flight): consume the admission directly. A
      // grant that lands later is scrubbed by the next begin and can never
      // match a newer period's id.
      recovered_wakes_.fetch_add(1, std::memory_order_relaxed);
      return {id, nullptr};
    }
    // Drive the time-triggered watchdog from the waiter itself — the native
    // gate has no other periodic actor. An escalation may have settled our
    // own fate; re-check before sleeping.
    if (timed_watchdog && core_.watchdog_tick(now_seconds())) continue;

    if (mode == WaitMode::kTimed &&
        std::chrono::steady_clock::now() >= deadline) {
      switch (core_.try_withdraw(id, now_seconds())) {
        case core::WithdrawResult::kCancelled:
          return {std::nullopt, nullptr};  // plain timeout
        case core::WithdrawResult::kAlreadyAdmitted:
          consume_grant(tid, id);
          return {id, nullptr};
        case core::WithdrawResult::kGone:
          // Rejected/reclaimed in the race window; next loop iteration's
          // fate probes would find it, but we are past the deadline —
          // consume the verdict here and report the timeout.
          (void)core_.take_rejection(id);
          (void)core_.take_reclaimed(id);
          {
            std::lock_guard<std::mutex> lock(wait_mu_);
            const auto e = evicted_.find(tid);
            if (e != evicted_.end() && e->second.first == id) {
              evicted_.erase(e);
            }
          }
          return {std::nullopt, nullptr};
      }
    }

    auto wait_dur = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(slice));
    if (mode == WaitMode::kTimed) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              deadline - std::chrono::steady_clock::now());
      wait_dur = std::max(std::chrono::nanoseconds(0),
                          std::min(wait_dur, remaining));
    }
    {
      std::unique_lock<std::mutex> lock(wait_mu_);
      // A verdict may have landed between the probes and this re-lock;
      // sleep only if the channel is still empty for us.
      if (granted_.count(tid) == 0 && evicted_.count(tid) == 0) {
        cv_.wait_for(lock, wait_dur);
        wait_slices_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    slice = std::min(slice * config_.retry.backoff_multiplier,
                     config_.retry.max_slice_seconds);
  }
}

void AdmissionGate::consume_grant(std::uint32_t tid, core::PeriodId id) {
  // try_withdraw said kAlreadyAdmitted, but the grant's DELIVERY (our batch
  // waker filling granted_) happens after the admitting thread drops the
  // core's slow mutex and may still be in flight. Wait for it briefly and
  // eat it, so it cannot linger and satisfy this thread's next begin.
  std::unique_lock<std::mutex> lock(wait_mu_);
  const auto arrived = [&] {
    const auto g = granted_.find(tid);
    return g != granted_.end() && g->second == id;
  };
  if (config_.fault_injector != nullptr) {
    // The notification itself may have been injected away (lost wake) — do
    // not insist; a late delivery is scrubbed by the next begin.
    if (!cv_.wait_for(lock, std::chrono::milliseconds(50), arrived)) {
      recovered_wakes_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  } else {
    cv_.wait(lock, arrived);
  }
  granted_.erase(tid);
}

namespace {

/// Per-thread recycled demand buffer: the single-resource begin would
/// otherwise heap-allocate a one-element vector per period, and end() would
/// free the one coming back in the release ticket. The pair below turns
/// that into a steady-state zero-allocation hand-off.
std::vector<core::ResourceDemand>& spare_demands() {
  thread_local std::vector<core::ResourceDemand> spare;
  return spare;
}

std::vector<core::ResourceDemand> one_demand(ResourceKind resource,
                                             double demand) {
  std::vector<core::ResourceDemand> v = std::move(spare_demands());
  v.clear();
  v.push_back({resource, demand});
  return v;
}

}  // namespace

core::PeriodId AdmissionGate::begin(ResourceKind resource, double demand,
                                    ReuseLevel reuse, std::string label) {
  const std::optional<core::PeriodId> id =
      begin_impl(one_demand(resource, demand), reuse, std::move(label),
                 WaitMode::kBlocking, {});
  RDA_CHECK(id.has_value());
  return *id;
}

core::PeriodId AdmissionGate::begin_multi(
    std::vector<core::ResourceDemand> demands, ReuseLevel reuse,
    std::string label) {
  const std::optional<core::PeriodId> id =
      begin_impl(std::move(demands), reuse, std::move(label),
                 WaitMode::kBlocking, {});
  RDA_CHECK(id.has_value());
  return *id;
}

std::optional<core::PeriodId> AdmissionGate::try_begin(ResourceKind resource,
                                                       double demand,
                                                       ReuseLevel reuse,
                                                       std::string label) {
  return begin_impl(one_demand(resource, demand), reuse, std::move(label),
                    WaitMode::kTry, {});
}

std::optional<core::PeriodId> AdmissionGate::begin_for(
    ResourceKind resource, double demand, ReuseLevel reuse,
    std::chrono::nanoseconds timeout, std::string label) {
  return begin_impl(one_demand(resource, demand), reuse, std::move(label),
                    WaitMode::kTimed, timeout);
}

void AdmissionGate::end(core::PeriodId id) {
  end(id, core::ReleaseObservation{});
}

void AdmissionGate::end(core::PeriodId id,
                        const core::ReleaseObservation& observed) {
  // Everything the release sets in motion reaches the sleepers through the
  // delivery channels: grants via the batch waker, rung-3 rejections and
  // reclaims via the evict notifier — each of which notifies. Nothing here
  // to ping (the old design notified only when hardened, leaving plain
  // waiters a lost-wakeup window whenever a fate carried no Waker call).
  core::ReleaseTicket ticket = core_.release(id, observed, now_seconds());
  // Hand the closed period's demand buffer to this thread's next begin.
  if (ticket.record.demands.capacity() > spare_demands().capacity()) {
    spare_demands() = std::move(ticket.record.demands);
  }
}

void AdmissionGate::reap_thread(std::uint32_t thread_id) {
  // remember_waiter: the reaped thread may still be alive inside a timed
  // wait (supervisor-initiated reclaim); the evict notice delivered by the
  // reap (plus the core-side reclaimed_ fate for sliced pollers) lets it
  // observe the reclaim instead of withdrawing a vanished period.
  core_.reap(thread_id, now_seconds(), /*remember_waiter=*/true);
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    granted_.erase(thread_id);
    groups_.erase(thread_id);
  }
  // Freed capacity already woke its admissions via the waker; this ping is
  // for the reaped owner itself, should it be sleeping.
  cv_.notify_all();
}

std::size_t AdmissionGate::sweep(std::uint64_t max_epoch_age) {
  // remember_waiters: live waiters evicted by the sweep observe the reclaim
  // through the evict notices the sweep delivers.
  return core_.sweep(max_epoch_age, now_seconds(), /*remember_waiters=*/true);
}

void AdmissionGate::heartbeat() { core_.heartbeat(self_id()); }

void AdmissionGate::advance_epoch() { core_.advance_epoch(); }

void AdmissionGate::mark_pool(std::uint32_t group) { core_.mark_pool(group); }

void AdmissionGate::join_group(std::uint32_t group) {
  wait_channel_dirty_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(wait_mu_);
  groups_[self_id()] = group;
}

GateStats AdmissionGate::stats() const {
  GateStats s;
  s.monitor = core_.stats();
  s.waits = waits_.load(std::memory_order_relaxed);
  s.wait_slices = wait_slices_.load(std::memory_order_relaxed);
  s.no_sleep_blocks = no_sleep_blocks_.load(std::memory_order_relaxed);
  s.total_wait_seconds = total_wait_seconds_.load(std::memory_order_relaxed);
  s.fast_path_hits = core_.fast_path_hits();
  s.partitioned_periods = core_.partitioned_periods();
  s.lost_wakes = lost_wakes_.load(std::memory_order_relaxed);
  s.recovered_wakes = recovered_wakes_.load(std::memory_order_relaxed);
  return s;
}

double AdmissionGate::usage(ResourceKind resource) const {
  return core_.resources().usage(resource);
}

std::size_t AdmissionGate::waiting() const {
  return core_.monitor().waitlist().size();
}

double AdmissionGate::oversubscribed(ResourceKind resource) const {
  return core_.resources().oversubscribed(resource);
}

core::AdmissionCore::AuditReport AdmissionGate::audit() const {
  return core_.audit();
}

}  // namespace rda::rt
