// Randomized end-to-end stress: arbitrary phase programs under every policy
// and every extension combination must (1) finish all work, (2) never
// deadlock, (3) leave the gate's load table empty, and (4) keep the cache
// model's invariants (checked inside the engine on every step).
#include <gtest/gtest.h>

#include "core/rda_scheduler.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace rda {
namespace {

using rda::util::MB;

struct StressParams {
  std::uint64_t seed;
  core::PolicyKind policy;
  bool fast_path;
  bool partitioning;
  bool feedback;
};

class GateStress : public ::testing::TestWithParam<StressParams> {};

TEST_P(GateStress, RandomWorkloadCompletesCleanly) {
  const StressParams params = GetParam();
  util::Rng rng(params.seed);

  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  cfg.machine.cores = 4;
  cfg.time_limit = 600.0;
  sim::Engine engine(cfg);

  core::RdaOptions options;
  options.policy = params.policy;
  options.fast_path = params.fast_path;
  options.partitioning.enable = params.partitioning;
  options.feedback.enable = params.feedback;
  core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                          cfg.calib, options);
  engine.set_gate(&gate);

  double expected_flops = 0.0;
  const int processes = 3 + static_cast<int>(rng.next_below(5));
  for (int p = 0; p < processes; ++p) {
    const sim::ProcessId pid = engine.create_process();
    const bool pool = rng.next_bool(0.25);
    if (pool) gate.mark_pool(pid);
    const int threads = 1 + static_cast<int>(rng.next_below(3));
    for (int t = 0; t < threads; ++t) {
      sim::ProgramBuilder b;
      const int phases = 1 + static_cast<int>(rng.next_below(6));
      for (int ph = 0; ph < phases; ++ph) {
        const double flops = rng.next_double(5e6, 3e8);
        const double wss = rng.next_double(0.1, 20.0);  // some oversized
        const auto reuse = static_cast<ReuseLevel>(rng.next_below(3));
        if (rng.next_bool(0.7)) {
          b.period("pp" + std::to_string(ph), flops, MB(wss), reuse);
          if (rng.next_bool(0.3)) {
            b.declared(MB(rng.next_double(0.1, 25.0)));  // mis-declare
          }
        } else {
          b.plain("glue" + std::to_string(ph), flops, MB(wss), reuse);
          // Barriers only make sense when all threads of the process share
          // the phase structure; keep them out of the random mix (covered
          // by dedicated barrier tests).
        }
        expected_flops += flops;
      }
      engine.add_thread(pid, b.build());
    }
  }

  const sim::SimResult result = engine.run();
  EXPECT_FALSE(result.hit_time_limit) << "seed " << params.seed;
  EXPECT_NEAR(result.total_flops, expected_flops, 1e-6 * expected_flops);
  // All periods closed: the load table must be fully released.
  EXPECT_NEAR(gate.resources().usage(ResourceKind::kLLC), 0.0, 1e-6);
  EXPECT_EQ(gate.monitor().waitlist().size(), 0u);
  EXPECT_EQ(gate.monitor().registry().active_count(), 0u);
  // Accounting identity: every begin either admitted immediately, woken
  // later, or force-admitted.
  const core::MonitorStats& s = gate.monitor_stats();
  EXPECT_EQ(s.begins, s.ends);
  EXPECT_GE(s.immediate_admissions + s.wakes + s.forced_admissions, s.begins);
}

std::vector<StressParams> make_params() {
  std::vector<StressParams> all;
  std::uint64_t seed = 100;
  for (const auto policy :
       {core::PolicyKind::kStrict, core::PolicyKind::kCompromise}) {
    for (const bool fast : {false, true}) {
      for (const bool part : {false, true}) {
        for (const bool feedback : {false, true}) {
          all.push_back({seed++, policy, fast, part, feedback});
        }
      }
    }
  }
  // A few extra seeds on the default configuration.
  for (int i = 0; i < 6; ++i) {
    all.push_back({seed++, core::PolicyKind::kStrict, false, false, false});
  }
  return all;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GateStress, ::testing::ValuesIn(make_params()));

}  // namespace
}  // namespace rda
