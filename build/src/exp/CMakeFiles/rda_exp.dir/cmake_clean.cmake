file(REMOVE_RECURSE
  "CMakeFiles/rda_exp.dir/harness.cpp.o"
  "CMakeFiles/rda_exp.dir/harness.cpp.o.d"
  "librda_exp.a"
  "librda_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
