// rda_profile — run the §2.4 profiler on a trace file.
//
// Windows the trace, detects progress periods, maps them onto the loop nest
// stored in the file, and prints the pp_begin/pp_end annotations to insert.
//
//   rda_profile --trace wnsq_8000.rdatrc --window 786432 --threshold 6
//
// --reuse-curve additionally runs Mattson stack-distance analysis over the
// whole trace and prints the LRU miss-ratio curve plus the cache size at
// its knee — a principled value for the pp_begin demand.
#include <cstdio>
#include <string>
#include <vector>

#include "args.hpp"
#include "obs/chrome_trace.hpp"
#include "profiler/report.hpp"
#include "profiler/reuse_distance.hpp"
#include "trace/trace_io.hpp"
#include "util/units.hpp"

namespace {

/// Exports the detected periods as Chrome trace slices on a window-index
/// timeline (1 window == 1 "second"), so the period structure the detector
/// found can be eyeballed in chrome://tracing / Perfetto.
void write_period_trace(const std::string& path,
                        const rda::prof::ProfileReport& report) {
  using rda::obs::Event;
  using rda::obs::EventKind;
  std::vector<Event> events;
  events.reserve(report.periods.size() * 2);
  for (std::size_t i = 0; i < report.periods.size(); ++i) {
    const rda::prof::MappedPeriod& mapped = report.periods[i];
    Event e;
    // One track per period: detected ranges may overlap, which would break
    // the B/E slice stack if they shared a thread row.
    e.thread = static_cast<rda::sim::ThreadId>(i);
    e.process = 0;
    e.period = static_cast<rda::core::PeriodId>(i + 1);
    e.demand = static_cast<double>(mapped.period.wss_bytes);
    const std::string label =
        i < report.annotations.size() && report.annotations[i].loop_name != "?"
            ? report.annotations[i].loop_name
            : "period " + std::to_string(i + 1);
    e.set_label(label);
    e.kind = EventKind::kBegin;
    e.time = static_cast<double>(mapped.period.first_window);
    events.push_back(e);
    e.kind = EventKind::kEnd;
    e.time = static_cast<double>(mapped.period.last_window + 1);
    events.push_back(e);
  }
  rda::obs::write_chrome_trace_file(path, events);
  std::printf("\nwrote %zu period slices to %s (timeline: window index)\n",
              report.periods.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rda;
  const tools::Args args(argc, argv);
  const std::string path = args.get("trace");
  if (path.empty() || args.has("help")) {
    tools::usage(
        "usage: rda_profile --trace FILE [--window N] [--threshold K]\n"
        "                   [--min-windows M] [--similarity S]\n"
        "  --window      accesses per profiling window (default 1048576)\n"
        "  --threshold   touches before a line counts as working set "
        "(default 4)\n"
        "  --min-windows consecutive similar windows to seed a period "
        "(default 3)\n"
        "  --similarity  relative similarity band (default 0.25)\n"
        "  --reuse-curve also print the LRU miss-ratio curve + WSS knee\n"
        "  --trace-out FILE  export detected periods as Chrome trace JSON\n"
        "                    (window-index timeline, for chrome://tracing)\n");
  }

  const trace::TraceFile file = trace::TraceFile::open(path);
  std::printf("%s: %llu records, %zu loops\n\n", path.c_str(),
              static_cast<unsigned long long>(file.record_count()),
              file.nest().size());

  prof::WindowConfig wcfg;
  wcfg.window_accesses = args.get_u64("window", wcfg.window_accesses);
  wcfg.hot_threshold =
      static_cast<std::uint32_t>(args.get_u64("threshold", wcfg.hot_threshold));
  prof::DetectorConfig dcfg;
  dcfg.min_windows = args.get_u64("min-windows", dcfg.min_windows);
  dcfg.similarity_threshold =
      args.get_double("similarity", dcfg.similarity_threshold);

  auto source = file.records();
  const prof::ProfileReport report =
      prof::Profiler(wcfg, dcfg).profile(*source, file.nest());
  std::printf("%s", report.to_string().c_str());

  if (args.has("reuse-curve")) {
    prof::ReuseDistanceAnalyzer rd;
    auto pass = file.records();
    rd.consume(*pass);
    std::printf("\nLRU miss-ratio curve (whole trace, %llu accesses, "
                "%llu cold):\n",
                static_cast<unsigned long long>(rd.total_accesses()),
                static_cast<unsigned long long>(rd.cold_misses()));
    for (double mb : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 15.0}) {
      std::printf("  %6.2f MB -> %5.1f%% misses\n", mb,
                  100.0 * rd.miss_ratio(util::MB(mb)));
    }
    std::printf("  knee (2%% slack): %.2f MB — a principled pp_begin "
                "demand\n",
                util::bytes_to_mb(rd.working_set_bytes(0.02)));
  }

  if (args.has("trace-out")) {
    write_period_trace(args.get("trace-out"), report);
  }

  if (report.periods.empty()) {
    std::printf("\nno periods detected — try a different --window (the "
                "trace generator prints a recommended value)\n");
    return 1;
  }
  return 0;
}
