// Reproduces paper Figure 12 / §4.4: working-set sizes of the top two
// progress periods of water_nsquared and ocean_cp across 1x/2x/4x/8x input
// scales, measured by the §2.4 profiler on generated traces; a logarithmic
// regression is fitted to the first three inputs and validated on the
// fourth (paper accuracies: Wnsq 92%/80%, Ocp 95%/94%).
#include <cstring>
#include <functional>
#include <iostream>
#include <vector>

#include "exp/harness.hpp"
#include "predict/regression.hpp"
#include "profiler/report.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/trace_models.hpp"

namespace {

using namespace rda;

struct Series {
  std::string name;
  std::vector<double> inputs;
  std::vector<double> measured_mb;
  double predicted_mb = 0.0;
  double accuracy = 0.0;
  std::string fit;
};

Series run_series(
    const std::string& name,
    const std::function<workload::AppTraceModel(std::uint64_t)>& make_model,
    const std::vector<std::uint64_t>& inputs, std::size_t period_index,
    std::size_t windows_per_pp) {
  Series series;
  series.name = name;
  for (const std::uint64_t n : inputs) {
    const workload::AppTraceModel model = make_model(n);
    prof::WindowConfig wcfg;
    wcfg.window_accesses = model.window_accesses;
    wcfg.hot_threshold = model.hot_threshold;
    const prof::ProfileReport report =
        prof::Profiler(wcfg, {}).profile(*model.source, model.nest);
    series.inputs.push_back(static_cast<double>(n));
    const double wss =
        report.periods.size() > period_index
            ? static_cast<double>(
                  report.periods[period_index].period.wss_bytes)
            : 0.0;
    series.measured_mb.push_back(util::bytes_to_mb(
        static_cast<std::uint64_t>(wss)));
    (void)windows_per_pp;
  }
  // Paper protocol: fit the first three inputs, predict the fourth.
  const std::vector<double> tx(series.inputs.begin(),
                               series.inputs.begin() + 3);
  const std::vector<double> ty(series.measured_mb.begin(),
                               series.measured_mb.begin() + 3);
  const predict::WssPredictor predictor(tx, ty);
  series.predicted_mb = predictor.predict(series.inputs[3]);
  series.accuracy =
      predict::prediction_accuracy(series.predicted_mb,
                                   series.measured_mb[3]);
  series.fit = predictor.describe();
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::size_t windows = quick ? 4 : 6;
  std::cout << "=== Figure 12: WSS vs input size + logarithmic prediction "
               "===\n(paper accuracies: Wnsq PP1 92%, PP2 80%; Ocp PP1 95%, "
               "PP2 94%)\n\n";

  auto wnsq = [windows](std::uint64_t n) {
    return workload::make_wnsq_trace(n, windows, /*seed=*/1234);
  };
  auto ocp = [windows](std::uint64_t n) {
    return workload::make_ocp_trace(n, windows, /*seed=*/5678);
  };

  // The four series re-profile independent generated traces; fan them out.
  std::vector<Series> all(4);
  exp::run_cells(all.size(), exp::parse_jobs(argc, argv),
                 [&](std::size_t cell) {
                   switch (cell) {
                     case 0:
                       all[0] = run_series("Wnsq PP1", wnsq,
                                           workload::wnsq_input_sizes(), 0,
                                           windows);
                       break;
                     case 1:
                       all[1] = run_series("Wnsq PP2", wnsq,
                                           workload::wnsq_input_sizes(), 1,
                                           windows);
                       break;
                     case 2:
                       all[2] = run_series("Ocp PP1", ocp,
                                           workload::ocp_input_sizes(), 0,
                                           windows);
                       break;
                     default:
                       all[3] = run_series("Ocp PP2", ocp,
                                           workload::ocp_input_sizes(), 1,
                                           windows);
                       break;
                   }
                 });

  util::Table table({"period", "1x [MB]", "2x [MB]", "4x [MB]",
                     "8x measured [MB]", "8x predicted [MB]", "accuracy"});
  for (const Series& s : all) {
    table.begin_row()
        .add_cell(s.name)
        .add_cell(s.measured_mb[0], 2)
        .add_cell(s.measured_mb[1], 2)
        .add_cell(s.measured_mb[2], 2)
        .add_cell(s.measured_mb[3], 2)
        .add_cell(s.predicted_mb, 2)
        .add_cell(std::to_string(static_cast<int>(100.0 * s.accuracy)) + "%");
  }
  std::cout << table.render() << "\nfits:\n";
  for (const Series& s : all) {
    std::cout << "  " << s.name << ": " << s.fit << "\n";
  }
  std::cout << "\n(the growth is logarithmic in the input size, matching the "
               "paper's observation)\n";
  return 0;
}
