// LRU reuse-distance (stack-distance) analysis.
//
// The paper quantifies each period with a working-set size and a coarse
// reuse level (§2.2). Reuse distances are the classical finer-grained
// instrument behind both: the distance histogram of a phase directly yields
// its miss ratio under ANY cache size (Mattson's stack algorithm), so it
// both validates the windowed WSS/reuse measurements of §2.4 and lets a
// user pick the declared demand as "the cache size at which the miss ratio
// knees".
//
// Two modes:
//  * exact (default): Mattson's algorithm with an order-statistic tree
//    (Fenwick-indexed positions), O(log n) per access.
//  * sampled (`sample_rate < 1`): SHARDS-style fixed-rate spatial hash
//    sampling of cache lines. A line is tracked iff hash(line) < R·2^64, so
//    the tracked set is an unbiased R-fraction of all lines, every access to
//    a tracked line is processed, and a measured stack distance d among
//    tracked lines estimates a true distance of d/R. Cost drops to
//    O(R·N log(R·M)); expected relative error of the miss-ratio curve is
//    O(1/sqrt(R·M)) (M = unique lines), so R = 0.01 on a million-line trace
//    stays within a few percent.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/record.hpp"

namespace rda::prof {

/// Histogram of LRU stack distances at cache-line granularity.
class ReuseDistanceAnalyzer {
 public:
  /// `granularity` quantizes addresses (cache line); `max_tracked` bounds
  /// the distance histogram (distances beyond it count as cold);
  /// `sample_rate` in (0, 1] selects the spatially-sampled mode (1 = exact).
  explicit ReuseDistanceAnalyzer(std::uint64_t granularity = 64,
                                 std::uint64_t max_tracked = 1u << 22,
                                 double sample_rate = 1.0);

  /// Processes one memory access (jumps should be filtered by the caller).
  void access(std::uint64_t address);

  /// Consumes a whole trace (memory records only).
  void consume(trace::TraceSource& source);

  /// Number of accesses whose reuse distance was exactly in
  /// [0, lines) — i.e. hits in a fully-associative LRU cache of that size.
  /// Sampled mode: count over the sampled accesses (distances pre-scaled).
  std::uint64_t hits_with_cache_lines(std::uint64_t lines) const;

  /// Miss ratio of a fully-associative LRU cache holding `bytes`.
  double miss_ratio(std::uint64_t bytes) const;

  /// Smallest cache size (bytes) whose miss ratio is within
  /// `slack` of the compulsory-only floor — a principled "working set size".
  std::uint64_t working_set_bytes(double slack = 0.02) const;

  /// All memory accesses seen, sampled or not.
  std::uint64_t total_accesses() const { return total_; }
  /// Accesses that passed the spatial filter (== total_accesses() when
  /// exact). Ratios are computed over this population.
  std::uint64_t sampled_accesses() const { return sampled_; }
  /// Cold misses, scaled to the full trace under sampling.
  std::uint64_t cold_misses() const;
  /// Distinct lines touched, scaled to the full trace under sampling.
  std::uint64_t unique_lines() const;

  double sample_rate() const { return sample_rate_; }

  /// Raw histogram: histogram()[d] = sampled accesses with (scaled) stack
  /// distance d (capped at max_tracked).
  const std::vector<std::uint64_t>& histogram() const { return histogram_; }

 private:
  bool sampled_line(std::uint64_t line) const;
  void fenwick_add(std::uint64_t index, std::int64_t delta);
  std::int64_t fenwick_sum(std::uint64_t index) const;  // prefix [0, index]

  std::uint64_t granularity_;
  std::uint64_t max_tracked_;
  double sample_rate_;
  std::uint64_t sample_threshold_ = 0;  ///< hash < this -> line is tracked
  /// line -> most recent access position (timestamp)
  std::unordered_map<std::uint64_t, std::uint64_t> last_position_;
  /// Fenwick tree over positions: 1 where a line's latest access sits.
  std::vector<std::int64_t> fenwick_;
  std::vector<std::uint64_t> histogram_;
  std::uint64_t clock_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t cold_ = 0;
};

}  // namespace rda::prof
