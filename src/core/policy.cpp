#include "core/policy.hpp"

#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace rda::core {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLinuxDefault: return "Linux default";
    case PolicyKind::kStrict: return "RDA:Strict";
    case PolicyKind::kCompromise: return "RDA:Compromise";
  }
  return "?";
}

bool StrictPolicy::allow(double outcome,
                         const ResourceState& resource) const {
  (void)resource;
  return outcome >= 0.0;
}

CompromisePolicy::CompromisePolicy(double oversubscription_factor)
    : factor_(oversubscription_factor) {
  RDA_CHECK_MSG(factor_ >= 1.0, "oversubscription factor below 1 is stricter "
                                "than Strict; use StrictPolicy");
}

bool CompromisePolicy::allow(double outcome,
                             const ResourceState& resource) const {
  // usage + demand <= factor * capacity  <=>  outcome >= -(factor-1)*capacity
  return outcome >= -(factor_ - 1.0) * resource.capacity;
}

double CompromisePolicy::admission_bound(double capacity) const {
  return factor_ * capacity;
}

std::string CompromisePolicy::name() const {
  std::ostringstream os;
  os << "RDA:Compromise(x=" << factor_ << ")";
  return os.str();
}

bool AlwaysAdmitPolicy::allow(double outcome,
                              const ResourceState& resource) const {
  (void)outcome;
  (void)resource;
  return true;
}

double AlwaysAdmitPolicy::admission_bound(double capacity) const {
  (void)capacity;
  return std::numeric_limits<double>::infinity();
}

std::unique_ptr<SchedulingPolicy> make_policy(PolicyKind kind,
                                              double oversubscription) {
  switch (kind) {
    case PolicyKind::kLinuxDefault:
      return std::make_unique<AlwaysAdmitPolicy>();
    case PolicyKind::kStrict:
      return std::make_unique<StrictPolicy>();
    case PolicyKind::kCompromise:
      return std::make_unique<CompromisePolicy>(oversubscription);
  }
  return std::make_unique<AlwaysAdmitPolicy>();
}

}  // namespace rda::core
