# Empty compiler generated dependencies file for rda_trace.
# This may be replaced when dependencies are built.
