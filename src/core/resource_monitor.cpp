#include "core/resource_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rda::core {

namespace {

// fetch_add for atomic<double> (not guaranteed lock-free as a member op on
// all toolchains; a CAS loop is, given atomic<double>::is_always_lock_free
// on this platform's 8-byte doubles).
double atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load();
  while (!a.compare_exchange_weak(cur, cur + delta)) {
  }
  return cur + delta;
}

}  // namespace

ResourceMonitor::ResourceMonitor() = default;

void ResourceMonitor::set_capacity(ResourceKind kind, double capacity) {
  RDA_CHECK_MSG(capacity > 0.0, "capacity must be positive for "
                                    << to_string(kind));
  capacities_[static_cast<std::size_t>(kind)].store(capacity);
  set_admission_bound(kind, capacity);
}

void ResourceMonitor::set_admission_bound(ResourceKind kind, double bound) {
  RDA_CHECK_MSG(bound > 0.0, "admission bound must be positive for "
                                 << to_string(kind));
  bounds_[static_cast<std::size_t>(kind)].store(bound);
  auto& stripes = stripes_[static_cast<std::size_t>(kind)];
  double total_usage = 0.0;
  for (auto& s : stripes) total_usage += s.usage.load();
  // Even split keeps MB-scale budgets binary-exact (kStripes is a power of
  // two) and gives every shard local headroom before it has to steal. An
  // infinite bound splits into infinite stripes, which is exactly right.
  // Usage already past the new bound (reconfiguring under forced load)
  // becomes overdraft, never negative free.
  const double per_stripe = std::max(0.0, bound - total_usage) / kStripes;
  overdraft_[static_cast<std::size_t>(kind)].store(
      std::max(0.0, total_usage - bound));
  for (auto& s : stripes) s.free.store(per_stripe);
  stripes[0].version.fetch_add(1);  // legacy: reconfiguration bumps the epoch
}

ResourceState ResourceMonitor::state(ResourceKind kind) const {
  return ResourceState{capacity(kind), usage(kind)};
}

double ResourceMonitor::usage(ResourceKind kind) const {
  const auto& stripes = stripes_[static_cast<std::size_t>(kind)];
  double sum = 0.0;
  // Bounded seqlock: retry while the stripes moved underneath the sum, but
  // never spin forever — a slightly torn advisory read beats a livelocked
  // reader under fast-lane churn.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t before = version_sum(kind);
    sum = 0.0;
    for (const auto& s : stripes) sum += s.usage.load();
    if (version_sum(kind) == before) break;
  }
  return sum;
}

double ResourceMonitor::total_free(ResourceKind kind) const {
  const auto& stripes = stripes_[static_cast<std::size_t>(kind)];
  double sum = 0.0;
  for (const auto& s : stripes) sum += s.free.load();
  return sum;
}

bool ResourceMonitor::try_acquire(ResourceKind kind, double demand,
                                  std::uint32_t stripe) {
  RDA_CHECK_MSG(demand >= 0.0, "negative demand on " << to_string(kind));
  auto& stripes = stripes_[static_cast<std::size_t>(kind)];
  Stripe& own = stripes[stripe % kStripes];
  if (demand == 0.0) {  // a zero claim always fits; keep the epoch moving
    own.version.fetch_add(1);
    return true;
  }
  // Fast path: the home stripe has the whole claim.
  double f = own.free.load();
  while (f >= demand) {
    if (own.free.compare_exchange_weak(f, f - demand)) {
      atomic_add(own.usage, demand);
      own.version.fetch_add(1);
      return true;
    }
  }
  // Steal the shortfall from siblings, recording every partial claim so a
  // failed acquisition can be rolled back exactly. Track the DECREASING
  // remainder, not an accumulating sum: the final steal takes `need` itself,
  // and need - need == 0.0 exactly, where got + (demand - got) can miss
  // `demand` by an ulp and spuriously fail an acquire with ample budget.
  std::array<double, kStripes> taken{};
  double need = demand;
  for (std::uint32_t i = 0; i < kStripes && need > 0.0; ++i) {
    Stripe& s = stripes[(stripe + i) % kStripes];
    double free = s.free.load();
    while (free > 0.0) {
      const double take = std::min(free, need);
      if (s.free.compare_exchange_weak(free, free - take)) {
        taken[(stripe + i) % kStripes] = take;
        need -= take;
        break;
      }
    }
  }
  if (need == 0.0) {
    atomic_add(own.usage, demand);
    own.version.fetch_add(1);
    return true;
  }
  for (std::uint32_t s = 0; s < kStripes; ++s) {
    if (taken[s] > 0.0) atomic_add(stripes[s].free, taken[s]);
  }
  return false;
}

void ResourceMonitor::increment_load(ResourceKind kind, double demand,
                                     std::uint32_t stripe) {
  RDA_CHECK_MSG(demand >= 0.0, "negative demand on " << to_string(kind));
  auto& stripes = stripes_[static_cast<std::size_t>(kind)];
  Stripe& own = stripes[stripe % kStripes];
  atomic_add(own.usage, demand);
  // Forced charge: consume whatever free budget exists (own stripe first),
  // then book the shortfall as overdraft. Free never goes negative, so a
  // concurrent try_acquire can keep trusting any positive free it CASes
  // away even while a watchdog force-admit overshoots the bound.
  double need = demand;
  for (std::uint32_t i = 0; i < kStripes && need > 0.0; ++i) {
    Stripe& s = stripes[(stripe + i) % kStripes];
    double free = s.free.load();
    while (free > 0.0) {
      const double take = std::min(free, need);
      if (s.free.compare_exchange_weak(free, free - take)) {
        need -= take;
        break;
      }
    }
  }
  if (need > 0.0) atomic_add(overdraft_[static_cast<std::size_t>(kind)], need);
  own.version.fetch_add(1);
}

void ResourceMonitor::decrement_load(ResourceKind kind, double demand,
                                     std::uint32_t stripe) {
  RDA_CHECK_MSG(demand >= 0.0, "negative demand on " << to_string(kind));
  Stripe& own = stripes_[static_cast<std::size_t>(kind)][stripe % kStripes];
  // Relative tolerance: repeated add/subtract at megabyte scale accumulates
  // ~ulp-sized dust; a REAL underflow (double end, forged demand) is off by
  // a whole demand, far beyond this band.
  const double tolerance = 1e-6 * demand + 1e-9;
  const double dust = dust_threshold(kind);
  double u = own.usage.load();
  double nu;
  do {
    RDA_CHECK_MSG(u + tolerance >= demand,
                  "load underflow on " << to_string(kind) << ": usage " << u
                                       << ", removing " << demand);
    nu = u - demand;
    if (nu < dust) nu = 0.0;  // snap dust to zero
  } while (!own.usage.compare_exchange_weak(u, nu));
  // Return exactly what left the usage stripe (demand plus any snapped
  // dust): pay down forced-admission overdraft first, then refill this
  // stripe's free pool — conserving Σu + Σf − overdraft == bound.
  double give = u - nu;
  std::atomic<double>& od = overdraft_[static_cast<std::size_t>(kind)];
  double cur = od.load();
  while (cur > 0.0 && give > 0.0) {
    const double pay = std::min(cur, give);
    if (od.compare_exchange_weak(cur, cur - pay)) {
      give -= pay;
      break;
    }
  }
  if (give > 0.0) atomic_add(own.free, give);
  own.version.fetch_add(1);
}

void ResourceMonitor::add_oversubscribed(ResourceKind kind, double demand) {
  RDA_CHECK_MSG(demand >= 0.0, "negative demand on " << to_string(kind));
  atomic_add(oversub_[static_cast<std::size_t>(kind)], demand);
}

void ResourceMonitor::remove_oversubscribed(ResourceKind kind, double demand) {
  RDA_CHECK_MSG(demand >= 0.0, "negative demand on " << to_string(kind));
  std::atomic<double>& tally = oversub_[static_cast<std::size_t>(kind)];
  const double tolerance = 1e-6 * demand + 1e-9;
  const double dust = dust_threshold(kind);
  double t = tally.load();
  double nt;
  do {
    RDA_CHECK_MSG(t + tolerance >= demand,
                  "oversubscription underflow on "
                      << to_string(kind) << ": tally " << t << ", removing "
                      << demand);
    nt = t - demand;
    if (nt < dust) nt = 0.0;
  } while (!tally.compare_exchange_weak(t, nt));
}

bool ResourceMonitor::effectively_free(ResourceKind kind) const {
  return usage(kind) <= dust_threshold(kind);
}

std::uint64_t ResourceMonitor::version() const {
  std::uint64_t sum = 1;  // legacy monitors start at epoch 1
  for (std::size_t r = 0; r < kNumResourceKinds; ++r) {
    sum += version_sum(static_cast<ResourceKind>(r));
  }
  return sum;
}

std::uint64_t ResourceMonitor::version_sum(ResourceKind kind) const {
  const auto& stripes = stripes_[static_cast<std::size_t>(kind)];
  std::uint64_t sum = 0;
  for (const auto& s : stripes) sum += s.version.load();
  return sum;
}

double ResourceMonitor::dust_threshold(ResourceKind kind) const {
  // Anything below a millionth of capacity is arithmetic residue, not load.
  return 1e-6 * std::max(1.0, capacity(kind));
}

}  // namespace rda::core
