// Simulation results — the same metrics the paper reports (§4.1):
// system energy (J), DRAM energy (J), GFLOPS, GFLOPS per Watt.
#pragma once

#include <cstdint>
#include <vector>

namespace rda::sim {

struct ThreadStats {
  double cpu_time = 0.0;           ///< seconds on a core (work + overhead)
  double gate_blocked_time = 0.0;  ///< seconds parked on the RDA wait queue
  double finish_time = 0.0;        ///< completion timestamp
  double flops = 0.0;
  double dram_bytes = 0.0;
};

struct SimResult {
  double makespan = 0.0;  ///< time at which the last thread finished
  double total_flops = 0.0;
  double package_joules = 0.0;  ///< CPU + cache (RAPL package domain)
  double dram_joules = 0.0;     ///< DRAM domain (paper Fig. 8)
  double dram_bytes = 0.0;

  std::uint64_t sim_steps = 0;  ///< integration intervals executed
  std::uint64_t context_switches = 0;
  std::uint64_t migrations = 0;  ///< cross-core moves (per-core queue mode)
  std::uint64_t gate_blocks = 0;      ///< begins that had to wait
  std::uint64_t gate_admissions = 0;  ///< begins admitted (incl. after wait)
  std::uint64_t api_calls = 0;        ///< pp_begin + pp_end consults
  // Fault-injection bookkeeping (all zero without an injector).
  std::uint64_t injected_deaths = 0;  ///< threads killed mid-period
  std::uint64_t lost_wakes = 0;       ///< admission grants dropped
  std::uint64_t recovered_wakes = 0;  ///< lost grants recovered at stall
  bool hit_time_limit = false;

  std::vector<ThreadStats> threads;

  /// Paper Fig. 7 metric: CPU + cache + DRAM energy.
  double system_joules() const { return package_joules + dram_joules; }
  /// Paper Fig. 9 metric: average attained GFLOPS over the whole run.
  double gflops() const {
    return makespan > 0.0 ? total_flops / makespan / 1e9 : 0.0;
  }
  /// Paper Fig. 10 metric: total flops / total system energy.
  double gflops_per_watt() const {
    const double joules = system_joules();
    return joules > 0.0 ? total_flops / joules / 1e9 : 0.0;
  }
};

}  // namespace rda::sim
