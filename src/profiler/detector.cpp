#include "profiler/detector.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.hpp"

namespace rda::prof {

namespace {

/// Relative difference |a-b| / max(|a|,|b|, eps).
double rel_diff(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-9});
  return std::fabs(a - b) / scale;
}

}  // namespace

PeriodDetector::PeriodDetector(DetectorConfig config) : config_(config) {
  RDA_CHECK(config_.min_windows >= 2);
  RDA_CHECK(config_.similarity_threshold > 0.0);
}

bool PeriodDetector::similar(const WindowStats& w, double mean_wss,
                             double mean_reuse) const {
  if (w.wss_bytes < config_.min_wss_bytes) return false;
  return rel_diff(static_cast<double>(w.wss_bytes), mean_wss) <=
             config_.similarity_threshold &&
         rel_diff(w.reuse_ratio, mean_reuse) <= config_.similarity_threshold;
}

DetectedPeriod PeriodDetector::summarize(
    const std::vector<WindowStats>& windows, std::size_t first,
    std::size_t last) const {
  DetectedPeriod period;
  period.first_window = first;
  period.last_window = last;
  double wss = 0.0, footprint = 0.0, reuse = 0.0;
  std::unordered_map<std::uint64_t, std::uint64_t> jump_counts;
  for (std::size_t i = first; i <= last; ++i) {
    const WindowStats& w = windows[i];
    wss += static_cast<double>(w.wss_bytes);
    footprint += static_cast<double>(w.footprint_bytes);
    reuse += w.reuse_ratio;
    for (const auto& [pc, count] : w.jump_counts) jump_counts[pc] += count;
  }
  const double n = static_cast<double>(last - first + 1);
  period.wss_bytes = static_cast<std::uint64_t>(wss / n);
  period.footprint_bytes = static_cast<std::uint64_t>(footprint / n);
  period.reuse_ratio = reuse / n;
  period.reuse_level =
      categorize_reuse(period.reuse_ratio, config_.reuse_thresholds);
  std::uint64_t best_pc = 0, best_count = 0;
  for (const auto& [pc, count] : jump_counts) {
    if (count > best_count || (count == best_count && pc < best_pc)) {
      best_pc = pc;
      best_count = count;
    }
  }
  period.dominant_jump_pc = best_pc;
  return period;
}

std::vector<DetectedPeriod> PeriodDetector::detect(
    const std::vector<WindowStats>& windows) const {
  std::vector<DetectedPeriod> periods;
  std::size_t start = 0;
  while (start + config_.min_windows <= windows.size()) {
    // Try to seed a repetition at `start`: all of the first min_windows
    // windows must agree with the group's running mean.
    double mean_wss = static_cast<double>(windows[start].wss_bytes);
    double mean_reuse = windows[start].reuse_ratio;
    bool seeded = windows[start].wss_bytes >= config_.min_wss_bytes;
    std::size_t count = 1;
    if (seeded) {
      for (std::size_t i = start + 1; i < start + config_.min_windows; ++i) {
        if (!similar(windows[i], mean_wss, mean_reuse)) {
          seeded = false;
          break;
        }
        ++count;
        const double c = static_cast<double>(count);
        mean_wss += (static_cast<double>(windows[i].wss_bytes) - mean_wss) / c;
        mean_reuse += (windows[i].reuse_ratio - mean_reuse) / c;
      }
    }
    if (!seeded) {
      ++start;  // paper: "otherwise, the next y/x periods starting at p2"
      continue;
    }
    // Extend the repetition until behaviour changes.
    std::size_t end = start + config_.min_windows;  // one past last accepted
    while (end < windows.size() &&
           similar(windows[end], mean_wss, mean_reuse)) {
      ++count;
      const double c = static_cast<double>(count);
      mean_wss += (static_cast<double>(windows[end].wss_bytes) - mean_wss) / c;
      mean_reuse += (windows[end].reuse_ratio - mean_reuse) / c;
      ++end;
    }
    periods.push_back(summarize(windows, start, end - 1));
    start = end;  // paper: "the next y/x periods starting at p_{j+1}"
  }
  return periods;
}

}  // namespace rda::prof
