// Input-scalable models of water_nsquared and ocean_cp (§4.4, Figs. 12/13).
//
// The paper profiles these two SPLASH-2 applications at 1x/2x/4x/8x input
// sizes (8000/15625/32768/64000 molecules; 514/1026/2050/4098 cells) and
// observes that each progress period's working set grows "in the shape of a
// logarithmic curve". Lacking the real applications, we embed that observed
// growth law in the models: each period's ground-truth WSS follows
// a·ln(1 + n/k), and the trace generator emits a hot/cold access pattern
// whose *measured* WSS (via the §2.4 profiler) approximates it with
// realistic sampling noise. Fig. 13 additionally needs the work scaling of
// the n² pair-interaction phase.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/phase.hpp"
#include "trace/generators.hpp"
#include "trace/loop_nest.hpp"

namespace rda::workload {

/// Paper input scales.
std::vector<std::uint64_t> wnsq_input_sizes();  // molecules, 1x..8x
std::vector<std::uint64_t> ocp_input_sizes();   // cells, 1x..8x

/// Ground-truth working-set sizes (bytes) of the top two periods, as a
/// function of input size. These are the curves Fig. 12 plots.
std::uint64_t wnsq_pp1_wss(std::uint64_t molecules);
std::uint64_t wnsq_pp2_wss(std::uint64_t molecules);
std::uint64_t ocp_pp1_wss(std::uint64_t cells);
std::uint64_t ocp_pp2_wss(std::uint64_t cells);

/// One application's profiling package: the trace (both periods, repeated
/// across timesteps) plus the loop-nest metadata the profiler maps against.
struct AppTraceModel {
  std::unique_ptr<trace::TraceSource> source;
  trace::LoopNest nest;
  /// Ground truth, index-aligned with the expected detected periods.
  std::vector<std::uint64_t> true_wss;
  /// Profiling window length (accesses) matched to the trace's footprints
  /// so the hot-threshold statistics are well conditioned; feed this into
  /// prof::WindowConfig.
  std::uint64_t window_accesses = 0;
  /// Recommended hot threshold for the same reason.
  std::uint32_t hot_threshold = 6;
};

/// Builds the water_nsquared trace at a given input size. `windows_per_pp`
/// controls period length in profiler windows.
AppTraceModel make_wnsq_trace(std::uint64_t molecules,
                              std::size_t windows_per_pp, std::uint64_t seed);

/// Builds the ocean_cp trace at a given input size.
AppTraceModel make_ocp_trace(std::uint64_t cells, std::size_t windows_per_pp,
                             std::uint64_t seed);

/// Fig. 13: the largest water_nsquared progress period as a simulator phase
/// program — flops scale with the n² pair interactions, WSS with the log
/// model. Inputs used by the paper: 512, 3375, 8000, 32768 molecules.
sim::PhaseProgram wnsq_largest_pp_program(std::uint64_t molecules);

/// Work (flops) of the largest period at a given input size.
double wnsq_largest_pp_flops(std::uint64_t molecules);

}  // namespace rda::workload
