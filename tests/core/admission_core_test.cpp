// AdmissionCore unit tests: the transactional admit/withdraw/release engine
// both gates (sim and native) and the cluster layer delegate to.
#include "core/admission.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

double mb(double v) { return static_cast<double>(rda::util::MB(v)); }

AdmitRequest request(sim::ThreadId thread, double demand,
                     std::string label = "pp") {
  AdmitRequest r;
  r.thread = thread;
  r.process = thread;  // singleton groups, like the native gate's default
  r.demands = {{ResourceKind::kLLC, demand}};
  r.label = std::move(label);
  return r;
}

TEST(AdmissionCore, AdmitChargesAndReleaseFrees) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore core(config);

  const AdmitTicket t = core.admit(request(1, mb(6)), 0.0);
  EXPECT_TRUE(t.admitted);
  EXPECT_FALSE(t.forced);
  EXPECT_EQ(core.resources().usage(ResourceKind::kLLC), mb(6));
  EXPECT_EQ(core.active_for_thread(1), t.id);

  const ReleaseTicket r = core.release(t.id, {}, 1.0);
  EXPECT_EQ(r.record.id, t.id);
  EXPECT_EQ(r.record.thread, 1u);
  EXPECT_TRUE(core.resources().effectively_free(ResourceKind::kLLC));
  EXPECT_FALSE(core.active_for_thread(1).has_value());
  EXPECT_EQ(core.stats().begins, 1u);
  EXPECT_EQ(core.stats().ends, 1u);
}

TEST(AdmissionCore, DeniedRequestParksUntilReleaseWakes) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore core(config);
  std::vector<sim::ThreadId> woken;
  core.set_waker([&](sim::ThreadId tid) { woken.push_back(tid); });

  const AdmitTicket first = core.admit(request(1, mb(10)), 0.0);
  ASSERT_TRUE(first.admitted);
  const AdmitTicket second = core.admit(request(2, mb(10)), 0.1);
  EXPECT_FALSE(second.admitted);
  EXPECT_EQ(core.monitor().waitlist().size(), 1u);
  EXPECT_TRUE(woken.empty());

  core.release(first.id, {}, 1.0);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 2u);
  EXPECT_EQ(core.resources().usage(ResourceKind::kLLC), mb(10));
  // The grant already charged load: withdraw must refuse.
  EXPECT_FALSE(core.withdraw(second.id, 1.1));
  core.release(second.id, {}, 2.0);
  EXPECT_TRUE(core.resources().effectively_free(ResourceKind::kLLC));
}

TEST(AdmissionCore, WithdrawReleasesNothingAndCountsCancel) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore core(config);

  const AdmitTicket first = core.admit(request(1, mb(12)), 0.0);
  const AdmitTicket second = core.admit(request(2, mb(12)), 0.1);
  ASSERT_FALSE(second.admitted);
  EXPECT_TRUE(core.withdraw(second.id, 0.2));
  EXPECT_EQ(core.stats().cancels, 1u);
  EXPECT_EQ(core.monitor().waitlist().size(), 0u);
  EXPECT_FALSE(core.active_for_thread(2).has_value());
  EXPECT_EQ(core.resources().usage(ResourceKind::kLLC), mb(12));
  core.release(first.id, {}, 1.0);
}

TEST(AdmissionCore, WithdrawUnknownIdThrows) {
  AdmissionCore core(AdmissionConfig{});
  EXPECT_THROW(core.withdraw(42, 0.0), util::CheckFailure);
  EXPECT_THROW(core.release(42, {}, 0.0), util::CheckFailure);
}

TEST(AdmissionCore, NestedAdmitThrowsBeforeAnyStatsMutation) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore core(config);
  const AdmitTicket t = core.admit(request(1, mb(1)), 0.0);
  ASSERT_TRUE(t.admitted);
  EXPECT_THROW(core.admit(request(1, mb(1)), 0.1), util::CheckFailure);
  EXPECT_EQ(core.stats().begins, 1u);
  EXPECT_EQ(core.resources().usage(ResourceKind::kLLC), mb(1));
}

TEST(AdmissionCore, FastPathHitsOnRepeatIdenticalRequest) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  config.fast_path = true;
  AdmissionCore core(config);

  const AdmitTicket first = core.admit(request(1, mb(4)), 0.0);
  EXPECT_FALSE(first.fast_path);
  const ReleaseTicket end1 = core.release(first.id, {}, 0.5);
  EXPECT_TRUE(end1.fast_path);  // empty waitlist: nobody to wake

  const AdmitTicket second = core.admit(request(1, mb(4)), 1.0);
  EXPECT_TRUE(second.fast_path);
  EXPECT_TRUE(second.admitted);
  EXPECT_EQ(core.fast_path_hits(), 1u);
  core.release(second.id, {}, 1.5);
}

TEST(AdmissionCore, FastPathInvalidatedByForeignLoadChange) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  config.fast_path = true;
  AdmissionCore core(config);

  const AdmitTicket a1 = core.admit(request(1, mb(4)), 0.0);
  core.release(a1.id, {}, 0.5);
  // Another thread disturbs the load table between thread 1's calls.
  const AdmitTicket b = core.admit(request(2, mb(4)), 0.6);
  const AdmitTicket a2 = core.admit(request(1, mb(4)), 1.0);
  EXPECT_FALSE(a2.fast_path);
  EXPECT_EQ(core.fast_path_hits(), 0u);
  core.release(b.id, {}, 2.0);
  core.release(a2.id, {}, 2.0);
}

TEST(AdmissionCore, PartitioningCapsStreamingDemand) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  config.partitioning.enable = true;
  config.partitioning.streaming_fraction = 0.25;
  AdmissionCore core(config);

  const AdmitTicket t = core.admit(request(1, mb(64)), 0.0);
  EXPECT_TRUE(t.admitted);
  EXPECT_EQ(t.occupancy_cap, mb(4));
  EXPECT_EQ(core.partitioned_periods(), 1u);
  EXPECT_EQ(core.resources().usage(ResourceKind::kLLC), mb(4));
  // The registry holds the capped charge but remembers the declaration.
  const ReleaseTicket r = core.release(t.id, {}, 1.0);
  EXPECT_EQ(r.record.primary_demand(), mb(4));
  EXPECT_EQ(r.record.declared_demand, mb(64));
}

TEST(AdmissionCore, FeedbackCorrectsUnderDeclaredDemand) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  config.feedback.enable = true;
  config.feedback.min_samples = 1;
  AdmissionCore core(config);

  // Declares 4 MB but the counters keep seeing 8 MB resident.
  for (int i = 0; i < 4; ++i) {
    const AdmitTicket t = core.admit(request(1, mb(4), "hot"), i * 1.0);
    ASSERT_TRUE(t.admitted);
    ReleaseObservation observed;
    observed.peak_occupancy = mb(8);
    observed.has_counters = true;
    core.release(t.id, observed, i * 1.0 + 0.5);
  }
  EXPECT_GT(core.corrector().correction("hot"), 1.5);

  // The corrected charge, not the declaration, is what admission debits.
  const AdmitTicket corrected = core.admit(request(1, mb(4), "hot"), 10.0);
  ASSERT_TRUE(corrected.admitted);
  EXPECT_GT(core.resources().usage(ResourceKind::kLLC), mb(6));
  core.release(corrected.id, {}, 11.0);
}

TEST(AdmissionCore, BestFitWakeOrderPrefersLargestFittingWaiter) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  config.monitor.wake_order = WakeOrder::kBestFitDemand;
  AdmissionCore core(config);
  std::vector<sim::ThreadId> woken;
  core.set_waker([&](sim::ThreadId tid) { woken.push_back(tid); });

  const AdmitTicket hog = core.admit(request(1, mb(14)), 0.0);
  ASSERT_TRUE(hog.admitted);
  ASSERT_FALSE(core.admit(request(2, mb(3)), 0.1).admitted);   // FIFO first
  ASSERT_FALSE(core.admit(request(3, mb(10)), 0.2).admitted);  // biggest
  ASSERT_FALSE(core.admit(request(4, mb(6)), 0.3).admitted);

  core.release(hog.id, {}, 1.0);
  // 16 MB free: best-fit admits 10 (thread 3) then 6 (thread 4) then
  // nothing — FIFO would have admitted 3 (thread 2) then 10 (thread 3).
  ASSERT_EQ(woken.size(), 2u);
  EXPECT_EQ(woken[0], 3u);
  EXPECT_EQ(woken[1], 4u);
  EXPECT_EQ(core.monitor().waitlist().size(), 1u);
}

TEST(AdmissionCore, EmptyDemandListRejected) {
  AdmissionCore core(AdmissionConfig{});
  AdmitRequest bad;
  bad.thread = 1;
  bad.process = 1;
  EXPECT_THROW(core.admit(std::move(bad), 0.0), util::CheckFailure);
}

// --- Batch entry points (service front end drain loop) ----------------------

TEST(AdmissionBatch, AdmitBatchMatchesPerCallSequence) {
  // The batched path must be semantically identical to calling admit() per
  // request in order: same tickets, same stats, same resource usage.
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore batched(config);
  AdmissionCore serial(config);

  std::vector<AdmitRequest> reqs;
  for (sim::ThreadId t = 1; t <= 6; ++t) {
    reqs.push_back(request(t, mb(4), "b" + std::to_string(t)));
  }
  std::vector<AdmitRequest> reqs_copy = reqs;

  const std::vector<AdmitTicket> tickets =
      batched.admit_batch(std::move(reqs), 0.0);
  std::vector<AdmitTicket> expected;
  for (AdmitRequest& r : reqs_copy) {
    expected.push_back(serial.admit(std::move(r), 0.0));
  }

  ASSERT_EQ(tickets.size(), expected.size());
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i].admitted, expected[i].admitted) << "request " << i;
    EXPECT_EQ(tickets[i].forced, expected[i].forced) << "request " << i;
    EXPECT_EQ(tickets[i].id, expected[i].id) << "request " << i;
  }
  EXPECT_EQ(batched.stats().begins, serial.stats().begins);
  EXPECT_EQ(batched.stats().blocks, serial.stats().blocks);
  EXPECT_EQ(batched.stats().immediate_admissions,
            serial.stats().immediate_admissions);
  EXPECT_EQ(batched.resources().usage(ResourceKind::kLLC),
            serial.resources().usage(ResourceKind::kLLC));
  EXPECT_TRUE(batched.audit().ok) << batched.audit().detail;
}

TEST(AdmissionBatch, AdmitBatchParksOverflowInArrivalOrder) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore core(config);
  std::vector<ProgressMonitor::WakeGrant> grants;
  core.set_batch_waker(
      [&](const std::vector<ProgressMonitor::WakeGrant>& batch) {
        grants.insert(grants.end(), batch.begin(), batch.end());
      });

  // 16 MB of budget, four 6 MB requests: two admit, two park — in order.
  std::vector<AdmitRequest> reqs;
  for (sim::ThreadId t = 1; t <= 4; ++t) reqs.push_back(request(t, mb(6)));
  const std::vector<AdmitTicket> tickets =
      core.admit_batch(std::move(reqs), 0.0);
  EXPECT_TRUE(tickets[0].admitted);
  EXPECT_TRUE(tickets[1].admitted);
  EXPECT_FALSE(tickets[2].admitted);
  EXPECT_FALSE(tickets[3].admitted);
  EXPECT_EQ(core.monitor().waitlist().size(), 2u);

  // Freeing both admitted periods wakes the parked pair FIFO, and the whole
  // release batch delivers ONE wake flush.
  core.release_batch({tickets[0].id, tickets[1].id}, 1.0);
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].thread, 3u);
  EXPECT_EQ(grants[1].thread, 4u);
  EXPECT_EQ(core.stats().wakes, 2u);
  EXPECT_TRUE(core.audit().ok) << core.audit().detail;
}

TEST(AdmissionBatch, ReleaseBatchMatchesPerCallSequence) {
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore batched(config);
  AdmissionCore serial(config);

  std::vector<PeriodId> batched_ids;
  std::vector<PeriodId> serial_ids;
  for (sim::ThreadId t = 1; t <= 5; ++t) {
    batched_ids.push_back(batched.admit(request(t, mb(2)), 0.0).id);
    serial_ids.push_back(serial.admit(request(t, mb(2)), 0.0).id);
  }

  const std::vector<ReleaseTicket> tickets =
      batched.release_batch(batched_ids, 1.0);
  for (const PeriodId id : serial_ids) serial.release(id, {}, 1.0);

  ASSERT_EQ(tickets.size(), 5u);
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i].record.id, batched_ids[i]);
  }
  EXPECT_EQ(batched.stats().ends, serial.stats().ends);
  EXPECT_TRUE(batched.resources().effectively_free(ResourceKind::kLLC));
  EXPECT_TRUE(batched.audit().ok) << batched.audit().detail;
}

TEST(AdmissionBatch, ReleaseBatchDischargesOversubRecords) {
  // Forced-oversub records carry slow-lane obligations (oversub tally): the
  // batch path must discharge them exactly like the per-call slow release.
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  config.monitor.watchdog.enable = true;
  config.monitor.watchdog.clamp = false;
  config.monitor.watchdog.force_admit = true;
  config.monitor.watchdog.max_wake_rounds = 1;
  AdmissionCore core(config);

  const AdmitTicket holder = core.admit(request(1, mb(12)), 0.0);
  ASSERT_TRUE(holder.admitted);
  const AdmitTicket waiter = core.admit(request(2, mb(12)), 0.1);
  ASSERT_FALSE(waiter.admitted);
  // Two stall escalations: rung 2 force-admits the waiter with the excess
  // booked in the oversubscription tally.
  while (!core.is_admitted(waiter.id)) {
    ASSERT_TRUE(core.watchdog_stalled(0.2));
  }
  EXPECT_GT(core.resources().oversubscribed(ResourceKind::kLLC), 0.0);

  core.release_batch({holder.id, waiter.id}, 1.0);
  EXPECT_EQ(core.resources().oversubscribed(ResourceKind::kLLC), 0.0);
  EXPECT_TRUE(core.resources().effectively_free(ResourceKind::kLLC));
  EXPECT_EQ(core.stats().ends, 2u);
  EXPECT_TRUE(core.audit().ok) << core.audit().detail;
}

TEST(AdmissionBatch, EndPeriodsUsesOneRescanForTheWholeBatch) {
  // Direct monitor-level check: a batch of ends re-offers capacity with a
  // single scheduling pass, so a waiter that fits only after ALL the ends
  // still wakes (work-conserving), and wake rounds advance once per batch.
  AdmissionConfig config;
  config.llc_capacity_bytes = mb(16);
  AdmissionCore core(config);
  std::vector<sim::ThreadId> woken;
  core.set_waker([&](sim::ThreadId tid) { woken.push_back(tid); });

  const AdmitTicket a = core.admit(request(1, mb(8)), 0.0);
  const AdmitTicket b = core.admit(request(2, mb(8)), 0.0);
  const AdmitTicket big = core.admit(request(3, mb(14)), 0.1);
  ASSERT_FALSE(big.admitted);

  // Releasing a alone cannot admit the 14 MB waiter; the batch of both must.
  core.release_batch({a.id, b.id}, 1.0);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 3u);
  core.release(big.id, {}, 2.0);
  EXPECT_TRUE(core.audit().ok) << core.audit().detail;
}

}  // namespace
}  // namespace rda::core
