// Discrete-event machine simulator.
//
// Models the paper's evaluation platform: N cores running a CFS-like fair
// scheduler (per-thread vruntime, fixed timeslice, context-switch cost) over
// threads that execute phase programs. Execution rates come from the LLC
// occupancy model and the DRAM bandwidth cap (perf_model); energy from the
// RAPL-style meter. A PhaseGate — the RDA scheduling extension — can be
// attached to intercept marked phase boundaries; without one, the engine is
// the paper's "Linux default" baseline (annotations are ignored and cost
// nothing, matching un-instrumented binaries).
//
// Simulation scheme: rates are piecewise-constant between events; the loop
// advances to the earliest of (quantum expiry, phase completion, overhead
// completion, max_step) and integrates work, traffic, occupancy, and energy
// over the interval.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "obs/sink.hpp"
#include "sim/cache_model.hpp"
#include "sim/calibration.hpp"
#include "sim/energy_model.hpp"
#include "sim/gate.hpp"
#include "sim/ids.hpp"
#include "sim/machine.hpp"
#include "sim/metrics.hpp"
#include "sim/perf_model.hpp"
#include "sim/phase.hpp"
#include "sim/ready_queue.hpp"

namespace rda::sim {

/// Baseline-scheduler structure: one global runqueue (simple, perfectly
/// load-balanced) or per-core runqueues with idle stealing (closer to real
/// CFS; migrations cost extra).
enum class SchedulerMode : std::uint8_t {
  kGlobalQueue,
  kPerCoreQueues,
};

struct EngineConfig {
  MachineConfig machine = MachineConfig::e5_2420();
  Calibration calib{};
  SchedulerMode scheduler = SchedulerMode::kGlobalQueue;
  /// Upper bound on one integration interval — bounds the explicit-Euler
  /// error of the occupancy model.
  double max_step = 500e-6;
  /// Safety net: simulated-seconds budget before the run aborts.
  double time_limit = 36000.0;
  /// §6 extension: when a gate is attached, un-instrumented (unmarked)
  /// phases are confined to at most this much LLC occupancy so they cannot
  /// pollute admitted periods ("allowing the instrumented programs to share
  /// a large cache partition"). 0 disables the confinement.
  double unannotated_cap_bytes = 0.0;
  /// Execution-level event sink (non-owning; nullptr = tracing off): phase
  /// body entry/exit, gate denials, and wakes, stamped with sim time. This
  /// is distinct from the gate's own admission-lifecycle sink — the engine
  /// records what threads *did*, the gate records what the scheduler
  /// *decided*.
  obs::TraceSink* trace_sink = nullptr;
  /// Fault injection (non-owning; nullptr = off). The engine consults
  /// kAdmit/kBlock after each admission decision (thread death) and kWake
  /// when a grant is delivered (lost wake, death at wake). Firing is keyed
  /// to consult counts, never wall time, so a plan replays exactly.
  fault::FaultInjector* fault_injector = nullptr;
};

class Engine final : public ThreadWaker {
 public:
  explicit Engine(EngineConfig config = {});

  /// Creates an empty process; threads are added to it.
  ProcessId create_process();

  /// Adds a thread executing `program`; it becomes runnable at time 0.
  ThreadId add_thread(ProcessId process, PhaseProgram program);

  /// Attaches the RDA extension (non-owning; must outlive run()).
  /// nullptr — the default — simulates the plain Linux baseline.
  void set_gate(PhaseGate* gate);

  /// Runs to completion of all threads (or the time limit).
  SimResult run();

  // ThreadWaker: the gate admitted a parked thread's pending period.
  void wake(ThreadId thread) override;

  // Introspection (tests).
  double now() const { return now_; }
  const LlcModel& llc() const { return llc_; }
  std::size_t thread_count() const { return threads_.size(); }

 private:
  enum class ThreadState : std::uint8_t {
    kReady,
    kRunning,
    kGateBlocked,
    kBarrierBlocked,
    kFinished,
  };
  /// Micro-position within the current phase.
  enum class Point : std::uint8_t {
    kBegin,    ///< about to execute pp_begin / enter the phase
    kBody,     ///< executing phase work
    kEnd,      ///< phase work done, executing pp_end + barrier
    kAdvance,  ///< past the end (barrier released); move to next phase
  };

  struct Thread {
    ThreadId id = kInvalidThread;
    ProcessId process = kInvalidProcess;
    PhaseProgram program;
    std::size_t phase_index = 0;
    /// Cached &program.phases[phase_index] — the begin/body/end state
    /// machine and the rate loop consult the current phase on every step,
    /// so it is re-bound only when phase_index moves.
    const PhaseSpec* phase = nullptr;
    Point point = Point::kBegin;
    double remaining = 0.0;
    bool admitted = false;  ///< gate already granted the pending begin
    ThreadState state = ThreadState::kReady;
    double vruntime = 0.0;
    double pending_overhead = 0.0;  ///< on-CPU seconds to burn before work
    /// LLC occupancy inherited from the previous phase (consecutive periods
    /// of one thread revisit the same data); dropped when the thread blocks.
    double carry_occupancy = 0.0;
    /// Partition cap the gate assigned to the pending period (0 = none).
    double pending_cap = 0.0;
    // Per-phase observation accumulators (counter-feedback extension).
    double phase_body_start = 0.0;
    double phase_occ_integral = 0.0;
    double phase_occ_peak = 0.0;
    double phase_dram_start = 0.0;
    double phase_flops_start = 0.0;
    bool phase_contended = false;
    int core = -1;
    int home_core = 0;  ///< owning runqueue in per-core mode
    double block_since = 0.0;
    ThreadStats stats;
  };

  struct Process {
    std::vector<ThreadId> members;
    int barrier_arrivals = 0;
  };

  struct Core {
    ThreadId running = kInvalidThread;
    ThreadId last = kInvalidThread;
    double quantum_end = 0.0;
  };

  static constexpr double kFlopEpsilon = 1e-3;
  static constexpr double kTimeEpsilon = 1e-12;

  const PhaseSpec& current_phase(const Thread& t) const {
    RDA_CHECK(t.phase != nullptr);
    return *t.phase;
  }
  /// Re-binds the cached phase pointer after phase_index changed.
  static void bind_phase(Thread& t) {
    t.phase = t.phase_index < t.program.phases.size()
                  ? &t.program.phases[t.phase_index]
                  : nullptr;
  }
  bool needs_point_processing(const Thread& t) const;
  /// Records an execution-level event for the thread's current phase.
  void trace(obs::EventKind kind, const Thread& t) const;

  void enqueue_ready(Thread& t);
  ThreadId pop_ready();
  bool any_ready() const;
  /// Per-core mode: pops for `core` from its own queue, stealing from the
  /// fullest queue when empty (migrating the thread). kInvalidThread if
  /// nothing is runnable anywhere.
  ThreadId pop_for_core(std::size_t core);
  bool dispatch();  ///< returns true if any core was filled
  void release_core(Thread& t);
  void block(Thread& t, ThreadState blocked_state);
  void finish(Thread& t);
  /// Injected thread death: tears the thread down mid-lifecycle. The gate's
  /// on_thread_exit reaps whatever period it still holds.
  void kill_thread(Thread& t);
  /// All-blocked recovery: resume threads whose grant was lost, then give
  /// the gate a last chance (watchdog escalation, rejections). Returns true
  /// when anything changed.
  bool recover_stall();

  /// Runs the begin/end state machine for a running thread until it is in
  /// the body with work, has pending overhead, blocked, or finished.
  void process_points(Thread& t);

  int alive_members(const Process& p) const;
  /// Releases the barrier if all alive members have arrived.
  void barrier_check(Process& p);

  void settle();  ///< dispatch + point-process until stable
  double compute_interval(const std::vector<PhaseRate>& rates,
                          const std::vector<ThreadId>& running) const;

  EngineConfig config_;
  PhaseGate* gate_ = nullptr;

  std::vector<Thread> threads_;
  std::vector<Process> processes_;
  std::vector<Core> cores_;
  /// Ready queue ordered by (vruntime, id) — flat binary-heap CFS stand-in.
  /// Global mode uses ready_; per-core mode uses core_ready_.
  ReadyQueue ready_;
  std::vector<ReadyQueue> core_ready_;

  LlcModel llc_;
  EnergyMeter energy_;
  /// Reusable bandwidth-cap solver: avoids a rates-vector allocation and
  /// re-derived per-thread miss terms on every integration step.
  RateSolver rate_solver_;
  double now_ = 0.0;
  double vclock_ = 0.0;
  std::size_t finished_count_ = 0;
  SimResult result_;
  bool ran_ = false;
};

}  // namespace rda::sim
