// Chrome trace_event JSON exporter.
//
// Emits the JSON Object Format of the Trace Event spec, loadable in
// chrome://tracing and Perfetto: begin/end become "B"/"E" duration slices
// per (process, thread) track; block/wake/force-admit/pool-disable/cancel
// become thread-scoped instant events, so a stranded waiter shows up as a
// slice that opens and never closes next to a lone "block" tick.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "obs/event.hpp"

namespace rda::obs {

/// Writes {"displayTimeUnit":...,"traceEvents":[...]} for the given events.
/// Timestamps are converted from seconds to microseconds (the spec's unit).
void write_chrome_trace(std::ostream& os, std::span<const Event> events);

/// Convenience: the same JSON as a string.
std::string chrome_trace_json(std::span<const Event> events);

/// Writes the JSON to a file; throws util::CheckFailure on I/O failure.
void write_chrome_trace_file(const std::string& path,
                             std::span<const Event> events);

}  // namespace rda::obs
