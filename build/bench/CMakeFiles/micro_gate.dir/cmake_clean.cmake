file(REMOVE_RECURSE
  "CMakeFiles/micro_gate.dir/micro_gate.cpp.o"
  "CMakeFiles/micro_gate.dir/micro_gate.cpp.o.d"
  "micro_gate"
  "micro_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
