// Reproduces paper Table 2: the eight evaluation workloads with their
// process/thread counts, working-set sizes, and reuse levels — plus the
// derived totals our phase programs implement.
#include <iostream>

#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/table2.hpp"

int main() {
  using namespace rda;
  std::cout << "=== Table 2: workloads ===\n\n";

  util::Table table({"Workload", "#Proc", "#Thr/Proc", "Work-set sizes (MB)",
                     "Data reuses", "periods/thread", "Gflops/thread"});
  for (const workload::WorkloadSpec& spec : workload::table2_workloads()) {
    const sim::PhaseProgram program = spec.program(0, 0);
    table.begin_row()
        .add_cell(spec.name)
        .add_cell(spec.processes)
        .add_cell(spec.threads_per_process)
        .add_cell(spec.wss_text)
        .add_cell(spec.reuse_text)
        .add_cell(static_cast<std::uint64_t>(program.marked_count()))
        .add_cell(program.total_flops() / 1e9, 1);
  }
  std::cout << table.render()
            << "\n(task-pool semantics: Raytrace only, per §3.4)\n";
  return 0;
}
