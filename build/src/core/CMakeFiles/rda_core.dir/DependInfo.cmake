
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feedback.cpp" "src/core/CMakeFiles/rda_core.dir/feedback.cpp.o" "gcc" "src/core/CMakeFiles/rda_core.dir/feedback.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/rda_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/rda_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/progress_monitor.cpp" "src/core/CMakeFiles/rda_core.dir/progress_monitor.cpp.o" "gcc" "src/core/CMakeFiles/rda_core.dir/progress_monitor.cpp.o.d"
  "/root/repo/src/core/rda_scheduler.cpp" "src/core/CMakeFiles/rda_core.dir/rda_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/rda_core.dir/rda_scheduler.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/rda_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/rda_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/resource_monitor.cpp" "src/core/CMakeFiles/rda_core.dir/resource_monitor.cpp.o" "gcc" "src/core/CMakeFiles/rda_core.dir/resource_monitor.cpp.o.d"
  "/root/repo/src/core/waitlist.cpp" "src/core/CMakeFiles/rda_core.dir/waitlist.cpp.o" "gcc" "src/core/CMakeFiles/rda_core.dir/waitlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
