file(REMOVE_RECURSE
  "CMakeFiles/rda_cluster.dir/cluster.cpp.o"
  "CMakeFiles/rda_cluster.dir/cluster.cpp.o.d"
  "librda_cluster.a"
  "librda_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
