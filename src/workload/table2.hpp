// The paper's evaluation workloads (Table 2).
//
//   BLAS-1 (daxpy,dcopy,dscal,dswap)    96 proc x 1 thr, .6 MB, low reuse
//   BLAS-2 (dgemvN,dgemvT,dtrmv,dtrsv)  96 proc x 1 thr, .6 MB, med reuse
//   BLAS-3 (dgemm,dsyrk,dtrmm,dtrsm)    96 proc x 1 thr, 1.6/2.4/2.4/3.2 MB, high
//   Water_sp   12 x 2, 1.6/1.3/1.3/1.6 MB, low x4
//   Water_nsq  12 x 2, 3.6/3.6/3.7 MB, high x3
//   Ocean_cp   48 x 2, 2.1/0.76/1.5/0.59 MB, high/med/high/med
//   Raytrace   48 x 4, 5.1/5.2 MB, high x2
//   Volrend    48 x 4, 1.8/1.7 MB, high x2
//
// Each BLAS kernel is one progress period ("each BLAS kernel as a whole is
// considered as a single progress period", §4.1); each SPLASH-2 application
// is a sequence of periods separated by short un-instrumented glue phases
// containing the barrier synchronization that §3.4 keeps outside periods.
// Work amounts (flops) are sized so a full workload simulates in seconds;
// they scale all policies identically, so relative results are unaffected.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/phase.hpp"

namespace rda::workload {

struct WorkloadSpec {
  std::string name;
  int processes = 1;
  int threads_per_process = 1;
  /// Raytrace distributes work through a task pool; its processes get the
  /// §3.4 group-pause semantics.
  bool task_pool = false;
  /// Table 2 columns, for the table2 bench.
  std::string wss_text;
  std::string reuse_text;
  /// Builds the phase program of thread `thread_idx` of process `proc_idx`.
  std::function<sim::PhaseProgram(int proc_idx, int thread_idx)> program;
};

/// All eight workloads, in the paper's order.
std::vector<WorkloadSpec> table2_workloads();

/// One workload by name ("BLAS-1", ..., "Raytrace"); throws if unknown.
const WorkloadSpec& find_workload(const std::vector<WorkloadSpec>& all,
                                  const std::string& name);

/// Instantiates a workload's processes/threads into an engine.
void populate_engine(sim::Engine& engine, const WorkloadSpec& spec,
                     const std::function<void(sim::ProcessId)>& on_pool =
                         {});

/// A cheaper copy of a workload: process count divided by `proc_divisor`
/// (min 1) and every phase's flops multiplied by `flop_scale`. Demand/reuse
/// are untouched, so admission behaviour is preserved at reduced cost —
/// used by tests and quick-look benches.
WorkloadSpec scale_workload(const WorkloadSpec& spec, double flop_scale,
                            int proc_divisor);

}  // namespace rda::workload
