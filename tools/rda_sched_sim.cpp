// rda_sched_sim — simulate a Table-2 workload under a scheduling policy.
//
//   rda_sched_sim --workload BLAS-3 --policy strict
//   rda_sched_sim --workload Raytrace --policy all --quick
//   rda_sched_sim --workload Water_nsq --policy compromise --oversub 1.5
//
// Knobs for what-if studies: --cores, --llc-mb, --bw-gbs override the paper
// machine; --partition / --feedback / --gate-bw enable the extensions.
// --trace-out FILE records the full admission + execution event stream of
// the last listed policy as Chrome trace_event JSON (chrome://tracing,
// Perfetto), prints an event summary, and cross-checks the recorded events
// against the scheduler's aggregate counters (exit 1 on mismatch).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "args.hpp"
#include "core/rda_scheduler.hpp"
#include "exp/harness.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/reconcile.hpp"
#include "obs/recorder.hpp"
#include "obs/summary.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;

/// Merges the scheduler's admission events with the engine's execution
/// events into one timeline. At equal timestamps the slice stack must stay
/// balanced: the engine's body slice nests inside the scheduler's period
/// slice, so inner ends close before outer ends and outer begins open
/// before inner begins (and all ends precede the next phase's begins).
std::vector<obs::Event> merge_events(const std::vector<obs::Event>& sched,
                                     const std::vector<obs::Event>& exec) {
  struct Tagged {
    obs::Event event;
    int rank;  ///< tie-break at equal timestamps
  };
  const auto rank_of = [](const obs::Event& e, bool from_engine) {
    if (e.kind == obs::EventKind::kEnd) return from_engine ? 0 : 1;
    if (e.kind == obs::EventKind::kBegin) return from_engine ? 3 : 2;
    return 4;  // instants sit above the freshly opened slices
  };
  std::vector<Tagged> tagged;
  tagged.reserve(sched.size() + exec.size());
  for (const obs::Event& e : sched) tagged.push_back({e, rank_of(e, false)});
  for (const obs::Event& e : exec) tagged.push_back({e, rank_of(e, true)});
  std::stable_sort(tagged.begin(), tagged.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.event.time != b.event.time) {
                       return a.event.time < b.event.time;
                     }
                     return a.rank < b.rank;
                   });
  std::vector<obs::Event> merged;
  merged.reserve(tagged.size());
  for (const Tagged& t : tagged) merged.push_back(t.event);
  return merged;
}

exp::RunRow run_one(const workload::WorkloadSpec& spec,
                    const sim::EngineConfig& engine_cfg,
                    core::PolicyKind policy, const tools::Args& args,
                    const std::string& trace_out, int* trace_failures) {
  const bool tracing = !trace_out.empty();
  if (!tracing && policy == core::PolicyKind::kLinuxDefault &&
      !args.has("partition") && !args.has("feedback") &&
      !args.has("gate-bw")) {
    exp::RunConfig cfg;
    cfg.engine = engine_cfg;
    cfg.policy = policy;
    return exp::run_workload(spec, cfg);
  }

  // Extension paths (and tracing) need direct gate construction.
  obs::EventRecorder admission_events(1 << 18);
  obs::EventRecorder execution_events(1 << 18);
  sim::EngineConfig traced_cfg = engine_cfg;
  if (tracing) traced_cfg.trace_sink = &execution_events;
  sim::Engine engine(traced_cfg);
  core::RdaOptions options;
  options.policy = policy;
  options.oversubscription = args.get_double("oversub", 2.0);
  options.fast_path = args.has("fast-path");
  options.partitioning.enable = args.has("partition");
  if (args.has("gate-bw")) {
    options.bandwidth_capacity = engine_cfg.machine.dram_bandwidth;
  }
  options.feedback.enable = args.has("feedback");
  if (tracing) options.trace_sink = &admission_events;
  core::RdaScheduler gate(
      static_cast<double>(engine_cfg.machine.llc_bytes), engine_cfg.calib,
      options);
  if (policy != core::PolicyKind::kLinuxDefault) engine.set_gate(&gate);
  workload::populate_engine(engine, spec, [&](sim::ProcessId pid) {
    gate.mark_pool(pid);
  });
  const sim::SimResult result = engine.run();

  if (tracing) {
    const std::vector<obs::Event> sched = admission_events.events();
    obs::write_chrome_trace_file(
        trace_out, merge_events(sched, execution_events.events()));
    std::printf("[%s] wrote %llu events to %s (%llu dropped)\n",
                core::to_string(policy).c_str(),
                static_cast<unsigned long long>(
                    admission_events.total_recorded() +
                    execution_events.total_recorded()),
                trace_out.c_str(),
                static_cast<unsigned long long>(admission_events.dropped() +
                                                execution_events.dropped()));
    std::printf("%s", obs::summarize(sched,
                                     admission_events.wait_histogram())
                          .c_str());
    const obs::ReconcileReport report =
        obs::reconcile(sched, gate.monitor_stats());
    if (report.ok) {
      std::printf("reconcile: OK — events match MonitorStats "
                  "(%llu begin-path force-admits)\n\n",
                  static_cast<unsigned long long>(report.begin_forced));
    } else {
      std::printf("reconcile: FAILED\n%s\n\n", report.message.c_str());
      ++*trace_failures;
    }
  }

  exp::RunRow row;
  row.workload = spec.name;
  row.policy = core::to_string(policy);
  row.system_joules = result.system_joules();
  row.dram_joules = result.dram_joules;
  row.gflops = result.gflops();
  row.gflops_per_watt = result.gflops_per_watt();
  row.makespan = result.makespan;
  row.total_flops = result.total_flops;
  row.gate_blocks = result.gate_blocks;
  row.context_switches = result.context_switches;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rda;
  const tools::Args args(argc, argv);
  if (args.has("help")) {
    tools::usage(
        "usage: rda_sched_sim --workload NAME --policy "
        "default|strict|compromise|all\n"
        "  [--quick] [--oversub X=2] [--cores N] [--llc-mb M] [--bw-gbs B]\n"
        "  [--partition] [--feedback] [--gate-bw] [--fast-path]\n"
        "  [--trace-out FILE]  record the last policy's admission+execution\n"
        "                      events as Chrome trace JSON (chrome://tracing\n"
        "                      or Perfetto) and reconcile them against the\n"
        "                      scheduler's aggregate stats (exit 1 on "
        "mismatch)\n"
        "workloads: BLAS-1 BLAS-2 BLAS-3 Water_sp Water_nsq Ocean_cp "
        "Raytrace Volrend\n");
  }

  sim::EngineConfig engine;
  engine.machine = sim::MachineConfig::e5_2420();
  if (args.has("cores")) {
    engine.machine.cores = static_cast<int>(args.get_u64("cores", 12));
  }
  if (args.has("llc-mb")) {
    engine.machine.llc_bytes = util::MB(args.get_double("llc-mb", 15.0));
  }
  if (args.has("bw-gbs")) {
    engine.machine.dram_bandwidth = args.get_double("bw-gbs", 30.0) * 1e9;
  }

  const auto specs = workload::table2_workloads();
  workload::WorkloadSpec spec =
      workload::find_workload(specs, args.get("workload", "BLAS-3"));
  if (args.has("quick")) spec = workload::scale_workload(spec, 0.125, 4);

  const std::string policy_arg = args.get("policy", "all");
  std::vector<core::PolicyKind> policies;
  if (policy_arg == "default") {
    policies = {core::PolicyKind::kLinuxDefault};
  } else if (policy_arg == "strict") {
    policies = {core::PolicyKind::kStrict};
  } else if (policy_arg == "compromise") {
    policies = {core::PolicyKind::kCompromise};
  } else if (policy_arg == "all") {
    policies = {core::PolicyKind::kLinuxDefault, core::PolicyKind::kStrict,
                core::PolicyKind::kCompromise};
  } else {
    tools::usage("unknown --policy '" + policy_arg + "'\n");
  }

  std::printf("workload %s on %s (%d cores, %.1f MB LLC, %.0f GB/s)\n\n",
              spec.name.c_str(), engine.machine.name.c_str(),
              engine.machine.cores,
              util::bytes_to_mb(engine.machine.llc_bytes),
              engine.machine.dram_bandwidth / 1e9);

  const std::string trace_out = args.get("trace-out", "");
  int trace_failures = 0;
  util::Table table({"policy", "GFLOPS", "makespan [s]", "system J",
                     "DRAM J", "GFLOPS/W", "gate blocks"});
  for (std::size_t i = 0; i < policies.size(); ++i) {
    // Tracing covers one run; with --policy all that is the last listed.
    const bool traced = i + 1 == policies.size();
    const exp::RunRow row = run_one(spec, engine, policies[i], args,
                                    traced ? trace_out : std::string(),
                                    &trace_failures);
    table.begin_row()
        .add_cell(row.policy)
        .add_cell(row.gflops, 2)
        .add_cell(row.makespan, 1)
        .add_cell(row.system_joules, 0)
        .add_cell(row.dram_joules, 0)
        .add_cell(row.gflops_per_watt, 3)
        .add_cell(row.gate_blocks);
  }
  std::printf("%s", table.render().c_str());
  return trace_failures > 0 ? 1 : 0;
}
