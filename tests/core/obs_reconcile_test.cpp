// End-to-end consistency of the observability layer: a full simulated run
// with the recorder attached must replay cleanly through the lifecycle
// state machine and agree event-for-event with MonitorStats, and the chrome
// export of that capture must contain exactly one slice pair per period.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/rda_scheduler.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/reconcile.hpp"
#include "obs/recorder.hpp"
#include "runtime/gate.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

using rda::util::MB;

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// Over-committed workload (three 8 MB threads on a 15 MB LLC) simulated
/// with the recorder attached: every block/wake path is exercised.
class TracedSimRun {
 public:
  TracedSimRun() {
    sim::EngineConfig cfg;
    cfg.machine = sim::MachineConfig::e5_2420();
    sim::Engine engine(cfg);
    RdaOptions options;
    options.policy = PolicyKind::kStrict;
    options.trace_sink = &recorder_;
    RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes), cfg.calib,
                      options);
    engine.set_gate(&gate);
    for (int t = 0; t < 3; ++t) {
      const sim::ProcessId pid = engine.create_process();
      sim::ProgramBuilder builder;
      for (int p = 0; p < 4; ++p) {
        builder.period("pp", 5e8, MB(8), ReuseLevel::kHigh);
      }
      engine.add_thread(pid, builder.build());
    }
    engine.run();
    stats_ = gate.monitor_stats();
    events_ = recorder_.events();
  }

  obs::EventRecorder recorder_{1 << 16};
  MonitorStats stats_;
  std::vector<obs::Event> events_;
};

TEST(ObsReconcile, SimulatedRunReconcilesExactly) {
  TracedSimRun run;
  ASSERT_EQ(run.recorder_.dropped(), 0u);
  // The workload is over-committed, so the interesting paths fired.
  EXPECT_EQ(run.stats_.begins, 12u);
  EXPECT_GT(run.stats_.blocks, 0u);
  EXPECT_GT(run.stats_.wakes, 0u);
  const obs::ReconcileReport report =
      obs::reconcile(run.events_, run.stats_);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_TRUE(report.message.empty());
  // Everything begun was also ended: no leaked periods at capture end.
  EXPECT_EQ(report.still_blocked, 0u);
  EXPECT_EQ(report.still_admitted, 0u);
  // Recorder counters match the monitor's aggregates kind for kind.
  EXPECT_EQ(run.recorder_.count(obs::EventKind::kBegin), run.stats_.begins);
  EXPECT_EQ(run.recorder_.count(obs::EventKind::kEnd), run.stats_.ends);
  EXPECT_EQ(run.recorder_.count(obs::EventKind::kBlock), run.stats_.blocks);
  EXPECT_EQ(run.recorder_.count(obs::EventKind::kWake), run.stats_.wakes);
}

TEST(ObsReconcile, ChromeExportMatchesStats) {
  TracedSimRun run;
  const std::string json = obs::chrome_trace_json(run.events_);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // One B and one E slice per period, one instant per block/wake.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), run.stats_.begins);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), run.stats_.ends);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""),
            run.stats_.blocks + run.stats_.wakes +
                run.stats_.immediate_admissions +
                run.stats_.forced_admissions + run.stats_.pool_disables +
                run.stats_.cancels);
}

TEST(ObsReconcile, TamperedStatsAreDetected) {
  TracedSimRun run;
  MonitorStats tampered = run.stats_;
  ++tampered.wakes;
  const obs::ReconcileReport report = obs::reconcile(run.events_, tampered);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("wakes"), std::string::npos);
}

TEST(ObsReconcile, LossyCaptureCannotReconcile) {
  TracedSimRun run;
  // Replay the same stream through a ring too small to hold it: the
  // surviving suffix must NOT reconcile against the full-run stats.
  obs::EventRecorder tiny(8);
  for (const obs::Event& e : run.events_) tiny.record(e);
  ASSERT_GT(tiny.dropped(), 0u);
  EXPECT_FALSE(obs::reconcile(tiny.events(), run.stats_).ok);
}

TEST(ObsReconcile, IllegalTransitionsAreDetected) {
  obs::Event begin;
  begin.kind = obs::EventKind::kBegin;
  begin.period = 1;
  obs::Event end = begin;
  end.kind = obs::EventKind::kEnd;

  // end without admit: the period never held load.
  MonitorStats stats;
  stats.begins = 1;
  stats.ends = 1;
  stats.immediate_admissions = 1;  // counts agree; the replay must object
  std::vector<obs::Event> events{begin, end};
  obs::ReconcileReport report = obs::reconcile(events, stats);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("not admitted"), std::string::npos);

  // duplicate begin of one period id: ids are never reused.
  events = {begin, begin};
  stats = MonitorStats{};
  stats.begins = 2;
  stats.immediate_admissions = 2;
  report = obs::reconcile(events, stats);
  EXPECT_FALSE(report.ok);
}

/// Contended native-gate run with the recorder attached: four 6 MB threads
/// on a 15 MB LLC, so real condvar waits happen and the gate's wall-clock
/// wait accounting can be reconciled against the event stream.
class TracedGateRun {
 public:
  TracedGateRun() {
    rt::GateConfig cfg;
    cfg.llc_capacity_bytes = static_cast<double>(MB(15));
    cfg.trace_sink = &recorder_;
    rt::AdmissionGate gate(cfg);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&gate] {
        for (int i = 0; i < 16; ++i) {
          const auto id =
              gate.begin(ResourceKind::kLLC, static_cast<double>(MB(6)),
                         ReuseLevel::kHigh, "w");
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          gate.end(id);
        }
      });
    }
    for (auto& th : threads) th.join();
    stats_ = gate.stats();
    events_ = recorder_.events();
    histogram_ = recorder_.wait_histogram();
  }

  obs::EventRecorder recorder_{1 << 16};
  rt::GateStats stats_;
  std::vector<obs::Event> events_;
  obs::WaitHistogram histogram_;
};

TEST(ObsReconcile, NativeGateWaitsReconcile) {
  TracedGateRun run;
  ASSERT_EQ(run.recorder_.dropped(), 0u);
  // 4×6 MB on 15 MB: the third concurrent begin must park, so the wait
  // machinery genuinely fired.
  ASSERT_GT(run.stats_.monitor.blocks, 0u);
  ASSERT_GT(run.stats_.waits, 0u);
  // The lifecycle replay holds for the native gate too.
  const obs::ReconcileReport lifecycle =
      obs::reconcile(run.events_, run.stats_.monitor);
  EXPECT_TRUE(lifecycle.ok) << lifecycle.message;
  // And the gate's wait counters agree with the event-derived view.
  obs::WaitStatsCheck gate_side;
  gate_side.waits = run.stats_.waits;
  gate_side.no_sleep_blocks = run.stats_.no_sleep_blocks;
  gate_side.total_wait_seconds = run.stats_.total_wait_seconds;
  const obs::ReconcileReport waits =
      obs::reconcile_waits(run.events_, run.histogram_, gate_side);
  EXPECT_TRUE(waits.ok) << waits.message;
  EXPECT_EQ(waits.still_blocked, 0u);
}

TEST(ObsReconcile, WaitMismatchesAreDetected) {
  TracedGateRun run;
  ASSERT_GT(run.stats_.monitor.blocks, 0u);
  // More sleeps than block events: impossible, must be flagged.
  obs::WaitStatsCheck impossible;
  impossible.waits = run.stats_.monitor.blocks + 1;
  impossible.total_wait_seconds = run.stats_.total_wait_seconds;
  obs::ReconcileReport report =
      obs::reconcile_waits(run.events_, run.histogram_, impossible);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("sleep with no block"), std::string::npos);

  // A histogram with an extra sample no event explains.
  obs::WaitHistogram padded = run.histogram_;
  padded.add(1.0);
  obs::WaitStatsCheck gate_side;
  gate_side.waits = run.stats_.waits;
  gate_side.no_sleep_blocks = run.stats_.no_sleep_blocks;
  gate_side.total_wait_seconds = run.stats_.total_wait_seconds;
  report = obs::reconcile_waits(run.events_, padded, gate_side);
  EXPECT_FALSE(report.ok);

  // Gate wait time wildly off the event-derived total.
  obs::WaitStatsCheck drifted = gate_side;
  drifted.total_wait_seconds += 3600.0;
  report = obs::reconcile_waits(run.events_, run.histogram_, drifted);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("total_wait_seconds"), std::string::npos);
}

TEST(ObsReconcile, StructuralInvariantChecked) {
  // Counts that agree per kind can still violate the begin identity:
  // one begin that neither admitted, blocked, nor forced.
  obs::Event begin;
  begin.kind = obs::EventKind::kBegin;
  begin.period = 1;
  MonitorStats stats;
  stats.begins = 1;
  const std::vector<obs::Event> events{begin};
  const obs::ReconcileReport report = obs::reconcile(events, stats);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("begins"), std::string::npos);
}

}  // namespace
}  // namespace rda::core
