// Log-bucketed latency histograms.
//
// BasicLatencyHistogram is the one implementation behind every latency
// metric in the repo: nanosecond-resolution log-linear buckets (each
// power-of-two octave split into 2^SubBucketBits equal sub-buckets, the way
// HdrHistogram does it), constant memory, O(1) insert, and quantiles read by
// linear interpolation inside the bucket holding the requested rank. Two
// histograms of the same shape merge by plain bucket addition, so per-thread
// instances combine into one deterministic aggregate regardless of merge
// order. Exact min/max are tracked on the side so the tails are never
// bucket-quantized.
//
// Two instantiations are exported:
//   * WaitHistogram    — SubBucketBits = 0: pure power-of-two octaves, the
//     original block→wake histogram (quantiles good to a factor of two,
//     which is what the cancel-path starvation bug needed).
//   * LatencyHistogram — SubBucketBits = 3: eight sub-buckets per octave
//     (≤ 12.5% relative bucket width), tight enough for the p50/p95/p99
//     admission-latency SLOs bench/service_load reports.
#pragma once

#include <array>
#include <cstdint>

namespace rda::obs {

template <unsigned SubBucketBits>
class BasicLatencyHistogram {
 public:
  /// Sub-buckets per power-of-two octave.
  static constexpr std::size_t kSubBuckets = std::size_t{1} << SubBucketBits;
  /// Linear region (values below kSubBuckets ns get width-1 ns buckets),
  /// then kSubBuckets log-linear buckets per octave up to 2^64 ns.
  static constexpr std::size_t kBuckets =
      kSubBuckets + (64 - SubBucketBits) * kSubBuckets;

  void add(double seconds);
  /// Bucket-wise addition; min/max/count/sum combine exactly. Merge order
  /// never changes the result (all fields are sums or extrema).
  void merge(const BasicLatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  double mean() const;
  /// Quantile in [0,1]: linear interpolation across the bucket holding the
  /// q-th rank, clamped into the exact observed [min, max]. 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  std::uint64_t bucket_count(std::size_t bucket) const {
    return buckets_[bucket];
  }
  /// Lower bound of a bucket, in seconds.
  static double bucket_floor(std::size_t bucket);
  /// Exclusive upper bound of a bucket, in seconds.
  static double bucket_ceiling(std::size_t bucket);
  static std::size_t bucket_of(double seconds);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

extern template class BasicLatencyHistogram<0>;
extern template class BasicLatencyHistogram<3>;

/// Block→wake wait-latency histogram (original power-of-two buckets).
using WaitHistogram = BasicLatencyHistogram<0>;

/// SLO-grade latency histogram (≤ 12.5% bucket width) for p50/p95/p99
/// extraction; the shape bench/service_load and the summary exporter use.
using LatencyHistogram = BasicLatencyHistogram<3>;

}  // namespace rda::obs
