#include "workload/table2.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::workload {

namespace {

using rda::util::MB;
using sim::PhaseProgram;
using sim::ProgramBuilder;

/// A single-period BLAS process: one kernel, one progress period.
PhaseProgram blas_program(const std::string& kernel, double flops,
                          std::uint64_t wss, ReuseLevel reuse) {
  return ProgramBuilder().period(kernel, flops, wss, reuse).build();
}

/// A SPLASH-style thread: `repeats` timesteps, each timestep a sequence of
/// progress periods separated by unmarked glue phases that carry the
/// barrier synchronization (kept outside periods per §3.4). Glue work is
/// sized at ~5-12% of a timestep — the un-instrumented, default-scheduled
/// fraction real SPLASH-2 codes spend outside their hot loops, which
/// dilutes RDA's benefit the same way it did in the paper.
PhaseProgram splash_program(const std::string& app,
                            const std::vector<sim::PhaseSpec>& periods,
                            int repeats, double glue_flops) {
  ProgramBuilder b;
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t i = 0; i < periods.size(); ++i) {
      const sim::PhaseSpec& p = periods[i];
      b.period(app + ".PP" + std::to_string(i + 1), p.flops, p.wss_bytes,
               p.reuse);
      // Glue: reduction + barrier, default-scheduled.
      b.plain(app + ".sync", glue_flops, MB(0.05), ReuseLevel::kLow);
      b.barrier();
    }
  }
  PhaseProgram program = b.build();
  for (sim::PhaseSpec& p : program.phases) {
    if (!p.marked && p.barrier_after) p.contains_blocking_sync = true;
  }
  return program;
}

sim::PhaseSpec pp(double flops, std::uint64_t wss, ReuseLevel reuse) {
  sim::PhaseSpec p;
  p.flops = flops;
  p.wss_bytes = wss;
  p.reuse = reuse;
  p.marked = true;
  return p;
}

}  // namespace

std::vector<WorkloadSpec> table2_workloads() {
  std::vector<WorkloadSpec> specs;

  // --- BLAS-1: 96 x 1, 0.6 MB, low reuse -----------------------------------
  {
    WorkloadSpec s;
    s.name = "BLAS-1";
    s.processes = 96;
    s.threads_per_process = 1;
    s.wss_text = ".6";
    s.reuse_text = "Low";
    s.program = [](int proc, int /*thread*/) {
      static const char* kKernels[4] = {"daxpy", "dcopy", "dscal", "dswap"};
      return blas_program(kKernels[proc % 4], 1.5e9, MB(0.6),
                          ReuseLevel::kLow);
    };
    specs.push_back(std::move(s));
  }

  // --- BLAS-2: 96 x 1, 0.6 MB, medium reuse --------------------------------
  {
    WorkloadSpec s;
    s.name = "BLAS-2";
    s.processes = 96;
    s.threads_per_process = 1;
    s.wss_text = ".6";
    s.reuse_text = "med";
    s.program = [](int proc, int /*thread*/) {
      static const char* kKernels[4] = {"dgemvN", "dgemvT", "dtrmv", "dtrsv"};
      return blas_program(kKernels[proc % 4], 4.0e9, MB(0.6),
                          ReuseLevel::kMedium);
    };
    specs.push_back(std::move(s));
  }

  // --- BLAS-3: 96 x 1, per-kernel WSS, high reuse ---------------------------
  {
    WorkloadSpec s;
    s.name = "BLAS-3";
    s.processes = 96;
    s.threads_per_process = 1;
    s.wss_text = "1.6, 2.4, 2.4, 3.2";
    s.reuse_text = "High";
    s.program = [](int proc, int /*thread*/) {
      static const char* kKernels[4] = {"dgemm", "dsyrk", "dtrmm(ru)",
                                        "dtrsm(ru)"};
      static const double kWss[4] = {1.6, 2.4, 2.4, 3.2};
      static const double kFlops[4] = {20e9, 16e9, 16e9, 16e9};
      const int k = proc % 4;
      return blas_program(kKernels[k], kFlops[k], MB(kWss[k]),
                          ReuseLevel::kHigh);
    };
    specs.push_back(std::move(s));
  }

  // --- Water_sp: 12 x 2, low reuse (RDA should not help) --------------------
  {
    WorkloadSpec s;
    s.name = "Water_sp";
    s.processes = 12;
    s.threads_per_process = 2;
    s.wss_text = "1.6, 1.3, 1.3, 1.6";
    s.reuse_text = "low, low, low, low";
    s.program = [](int, int) {
      return splash_program(
          "wsp",
          {pp(4e9, MB(1.6), ReuseLevel::kLow), pp(3e9, MB(1.3), ReuseLevel::kLow),
           pp(3e9, MB(1.3), ReuseLevel::kLow), pp(4e9, MB(1.6), ReuseLevel::kLow)},
          /*repeats=*/2, /*glue_flops=*/0.5e9);
    };
    specs.push_back(std::move(s));
  }

  // --- Water_nsq: 12 x 2, high reuse ----------------------------------------
  {
    WorkloadSpec s;
    s.name = "Water_nsq";
    s.processes = 12;
    s.threads_per_process = 2;
    s.wss_text = "3.6, 3.6, 3.7";
    s.reuse_text = "high, high, high";
    s.program = [](int, int) {
      return splash_program("wnsq",
                            {pp(8e9, MB(3.6), ReuseLevel::kHigh),
                             pp(8e9, MB(3.6), ReuseLevel::kHigh),
                             pp(8e9, MB(3.7), ReuseLevel::kHigh)},
                            /*repeats=*/2, /*glue_flops=*/1.0e9);
    };
    specs.push_back(std::move(s));
  }

  // --- Ocean_cp: 48 x 2, mixed reuse ----------------------------------------
  {
    WorkloadSpec s;
    s.name = "Ocean_cp";
    s.processes = 48;
    s.threads_per_process = 2;
    s.wss_text = "2.1, 0.76, 1.5, 0.59";
    s.reuse_text = "high, med, high, med";
    s.program = [](int, int) {
      return splash_program("ocp",
                            {pp(5e9, MB(2.1), ReuseLevel::kHigh),
                             pp(2e9, MB(0.76), ReuseLevel::kMedium),
                             pp(4e9, MB(1.5), ReuseLevel::kHigh),
                             pp(2e9, MB(0.59), ReuseLevel::kMedium)},
                            /*repeats=*/2, /*glue_flops=*/0.5e9);
    };
    specs.push_back(std::move(s));
  }

  // --- Raytrace: 48 x 4, high reuse, task pool ------------------------------
  {
    WorkloadSpec s;
    s.name = "Raytrace";
    s.processes = 48;
    s.threads_per_process = 4;
    s.task_pool = true;  // SPLASH-2 raytrace distributes rays via a task pool
    s.wss_text = "5.1, 5.2";
    s.reuse_text = "high, high";
    s.program = [](int, int) {
      return splash_program("rt",
                            {pp(3e9, MB(5.1), ReuseLevel::kHigh),
                             pp(3e9, MB(5.2), ReuseLevel::kHigh)},
                            /*repeats=*/1, /*glue_flops=*/0.3e9);
    };
    specs.push_back(std::move(s));
  }

  // --- Volrend: 48 x 4, high reuse ------------------------------------------
  {
    WorkloadSpec s;
    s.name = "Volrend";
    s.processes = 48;
    s.threads_per_process = 4;
    s.wss_text = "1.8, 1.7";
    s.reuse_text = "high, high";
    s.program = [](int, int) {
      return splash_program("vr",
                            {pp(3e9, MB(1.8), ReuseLevel::kHigh),
                             pp(3e9, MB(1.7), ReuseLevel::kHigh)},
                            /*repeats=*/1, /*glue_flops=*/0.3e9);
    };
    specs.push_back(std::move(s));
  }

  return specs;
}

const WorkloadSpec& find_workload(const std::vector<WorkloadSpec>& all,
                                  const std::string& name) {
  for (const WorkloadSpec& s : all) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown workload: " + name);
}

WorkloadSpec scale_workload(const WorkloadSpec& spec, double flop_scale,
                            int proc_divisor) {
  RDA_CHECK(flop_scale > 0.0);
  RDA_CHECK(proc_divisor >= 1);
  WorkloadSpec scaled = spec;
  scaled.processes = std::max(1, spec.processes / proc_divisor);
  const auto inner = spec.program;
  scaled.program = [inner, flop_scale](int proc, int thread) {
    sim::PhaseProgram program = inner(proc, thread);
    for (sim::PhaseSpec& p : program.phases) p.flops *= flop_scale;
    return program;
  };
  return scaled;
}

void populate_engine(sim::Engine& engine, const WorkloadSpec& spec,
                     const std::function<void(sim::ProcessId)>& on_pool) {
  for (int p = 0; p < spec.processes; ++p) {
    const sim::ProcessId pid = engine.create_process();
    if (spec.task_pool && on_pool) on_pool(pid);
    for (int t = 0; t < spec.threads_per_process; ++t) {
      engine.add_thread(pid, spec.program(p, t));
    }
  }
}

}  // namespace rda::workload
