file(REMOVE_RECURSE
  "CMakeFiles/rda_util.dir/stats.cpp.o"
  "CMakeFiles/rda_util.dir/stats.cpp.o.d"
  "CMakeFiles/rda_util.dir/table.cpp.o"
  "CMakeFiles/rda_util.dir/table.cpp.o.d"
  "librda_util.a"
  "librda_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
