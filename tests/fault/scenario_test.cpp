// Fault-scenario tests: the sim-substrate thread-death reclamation proof
// (obs event ledger: kReclaim followed by the waiter's kWake) and the
// byte-determinism of the ScenarioResult rows tools/fault_matrix compares.
#include "fault/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/rda_scheduler.hpp"
#include "obs/reconcile.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace rda::fault {
namespace {

using util::MB;

struct SimRun {
  obs::EventRecorder recorder{1 << 14};
  sim::SimResult result;
  core::MonitorStats stats;
};

/// Three single-thread processes, one 10 MB period each, on the 15 MB
/// e5_2420 LLC: only one fits at a time, so threads 1 and 2 park behind
/// thread 0 and every grant goes through the waitlist. Fills `run` (the
/// recorder is not movable, so the caller owns the slot).
void run_three_way_contention(FaultPlan plan, SimRun& run) {
  FaultInjector injector(std::move(plan));

  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  cfg.fault_injector = &injector;
  sim::Engine engine(cfg);

  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;
  options.trace_sink = &run.recorder;
  options.fault_injector = &injector;
  core::RdaScheduler sched(static_cast<double>(cfg.machine.llc_bytes),
                           cfg.calib, options);
  engine.set_gate(&sched);

  for (int t = 0; t < 3; ++t) {
    sim::ProgramBuilder builder;
    builder.period("pp", 1e8, MB(10), ReuseLevel::kHigh);
    engine.add_thread(engine.create_process(), builder.build());
  }
  run.result = engine.run();
  run.stats = sched.monitor_stats();
}

TEST(FaultScenario, SimDeathAtGrantReclaimsAdmittedOrphanAndAdmitsWaiter) {
  // The granted thread dies the moment its waitlisted period is admitted:
  // the reaper must return the orphan's load and the rescan must admit the
  // NEXT waiter — proven from the recorded event stream, not just counters.
  FaultPlan plan;
  FaultSpec death;
  death.kind = FaultKind::kThreadDeath;
  death.hook = Hook::kWake;
  plan.add(death);

  SimRun run;
  run_three_way_contention(std::move(plan), run);

  EXPECT_EQ(run.result.injected_deaths, 1u);
  EXPECT_EQ(run.stats.begins, 3u);
  EXPECT_EQ(run.stats.ends, 2u);
  EXPECT_EQ(run.stats.reclaims, 1u);
  EXPECT_EQ(run.stats.blocks, 2u);

  ASSERT_EQ(run.recorder.dropped(), 0u);
  const std::vector<obs::Event> events = run.recorder.events();
  EXPECT_EQ(run.recorder.count(obs::EventKind::kReclaim), 1u);

  // Event-ledger proof: the reclaim is followed by a wake that admits a
  // DIFFERENT thread's period (the waiter unblocked by the returned load).
  const auto reclaim = std::find_if(
      events.begin(), events.end(), [](const obs::Event& e) {
        return e.kind == obs::EventKind::kReclaim;
      });
  ASSERT_NE(reclaim, events.end());
  const auto wake_after = std::find_if(
      reclaim + 1, events.end(), [&](const obs::Event& e) {
        return e.kind == obs::EventKind::kWake && e.thread != reclaim->thread;
      });
  EXPECT_NE(wake_after, events.end())
      << "no waiter was admitted after the orphan reclaim";

  // Full stream/stat reconciliation with nothing stranded.
  const obs::ReconcileReport report = obs::reconcile(events, run.stats);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.still_blocked, 0u);
  EXPECT_EQ(report.still_admitted, 0u);
}

TEST(FaultScenario, SimDeathWhileWaitlistedEvictsOrphanEntry) {
  FaultPlan plan;
  FaultSpec death;
  death.kind = FaultKind::kThreadDeath;
  death.hook = Hook::kBlock;
  plan.add(death);

  SimRun run;
  run_three_way_contention(std::move(plan), run);

  EXPECT_EQ(run.result.injected_deaths, 1u);
  EXPECT_EQ(run.stats.begins, 3u);
  EXPECT_EQ(run.stats.ends, 2u);
  EXPECT_EQ(run.stats.reclaims, 1u);
  EXPECT_EQ(run.recorder.count(obs::EventKind::kReclaim), 1u);
  const obs::ReconcileReport report =
      obs::reconcile(run.recorder.events(), run.stats);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.still_blocked, 0u);
  EXPECT_EQ(report.still_admitted, 0u);
}

TEST(FaultScenario, SimLostWakeIsRecoveredAtStall) {
  FaultPlan plan;
  FaultSpec lost;
  lost.kind = FaultKind::kLostWake;
  lost.hook = Hook::kWake;
  plan.add(lost);

  SimRun run;
  run_three_way_contention(std::move(plan), run);

  EXPECT_EQ(run.result.lost_wakes, 1u);
  EXPECT_EQ(run.result.recovered_wakes, 1u);
  // Despite the dropped grant, every period completed.
  EXPECT_EQ(run.stats.begins, 3u);
  EXPECT_EQ(run.stats.ends, 3u);
}

TEST(FaultScenario, ScriptedDeathCellHoldsLedger) {
  ScenarioSpec spec;
  spec.name = "contended";
  spec.substrate = Substrate::kSim;
  spec.seed = 1;
  FaultSpec death;
  death.kind = FaultKind::kThreadDeath;
  death.hook = Hook::kAdmit;
  // Only the first admission in this shape is immediate (kAdmit); all later
  // grants go through the waitlist.
  death.at_count = 1;
  spec.plan.add(death);

  const ScenarioResult r = run_scenario(spec);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.reclaims, 1u);
  EXPECT_EQ(r.fired_kinds, "thread_death");
  EXPECT_EQ(r.begins, r.ends + r.reclaims);
}

TEST(FaultScenario, SimRepeatRunsAreByteIdentical) {
  ScenarioSpec spec;
  spec.name = "infeasible";
  spec.substrate = Substrate::kSim;
  spec.seed = 7;
  spec.fault_count = 3;
  const std::string first = csv_row(run_scenario(spec));
  const std::string second = csv_row(run_scenario(spec));
  EXPECT_EQ(first, second);
}

TEST(FaultScenario, NativeRepeatRunsAreByteIdentical) {
  ScenarioSpec spec;
  spec.name = "contended";
  spec.substrate = Substrate::kNative;
  spec.seed = 7;
  spec.fault_count = 2;
  const std::string first = csv_row(run_scenario(spec));
  const std::string second = csv_row(run_scenario(spec));
  EXPECT_EQ(first, second);
}

TEST(FaultScenario, UnknownShapeReportsFailureInsteadOfThrowing) {
  ScenarioSpec spec;
  spec.name = "no-such-shape";
  const ScenarioResult r = run_scenario(spec);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("unknown scenario shape"), std::string::npos)
      << r.failure;
}

TEST(FaultScenario, GridCoversShapesSubstratesAndScriptedCells) {
  const std::vector<ScenarioSpec> grid = scenario_grid(1, 3);
  // 4 shapes x 2 substrates x 3 seeds + the sim-only multi-resource shape's
  // 3 seeds + 8 scripted fault cells.
  EXPECT_EQ(grid.size(), 4u * 2u * 3u + 3u + 8u);
  bool has_multires = false;
  for (const ScenarioSpec& s : grid) {
    if (s.name == "multires") {
      has_multires = true;
      EXPECT_EQ(s.substrate, Substrate::kSim);
    }
  }
  EXPECT_TRUE(has_multires);
  // Seed index 0 is the fault-free control column.
  EXPECT_EQ(grid.front().fault_count, 0u);
  bool has_native = false;
  for (const ScenarioSpec& s : grid) {
    if (s.substrate == Substrate::kNative) has_native = true;
  }
  EXPECT_TRUE(has_native);
}

TEST(FaultScenario, CsvRowMatchesHeaderArity) {
  const std::string header = csv_header();
  ScenarioResult r;
  r.name = "contended";
  r.substrate = "sim";
  r.failure = "a,b\nc";  // must be sanitized into one CSV cell
  const std::string row = csv_row(r);
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(row), commas(header));
  EXPECT_EQ(std::count(row.begin(), row.end(), '\n'), 1);
}

}  // namespace
}  // namespace rda::fault
