file(REMOVE_RECURSE
  "CMakeFiles/rda_sched_sim.dir/rda_sched_sim.cpp.o"
  "CMakeFiles/rda_sched_sim.dir/rda_sched_sim.cpp.o.d"
  "rda_sched_sim"
  "rda_sched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_sched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
