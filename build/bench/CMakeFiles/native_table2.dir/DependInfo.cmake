
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/native_table2.cpp" "bench/CMakeFiles/native_table2.dir/native_table2.cpp.o" "gcc" "bench/CMakeFiles/native_table2.dir/native_table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/rda_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rda_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rda_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/rda_api.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rda_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/rda_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/rda_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rda_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/rda_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
