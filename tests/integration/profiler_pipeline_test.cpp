// Full §2.4 pipeline: application trace -> windows -> detected periods ->
// loop mapping -> annotation, across both modelled applications and several
// input sizes. This is the machinery behind Fig. 12 and Table 2's
// SPLASH-2 rows.
#include <gtest/gtest.h>

#include "profiler/report.hpp"
#include "workload/trace_models.hpp"

namespace rda {
namespace {

prof::ProfileReport profile_model(const workload::AppTraceModel& model) {
  prof::WindowConfig wcfg;
  wcfg.window_accesses = model.window_accesses;
  wcfg.hot_threshold = model.hot_threshold;
  prof::DetectorConfig dcfg;
  return prof::Profiler(wcfg, dcfg).profile(*model.source, model.nest);
}

class WnsqInputs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WnsqInputs, TwoPeriodsDetectedAndMeasured) {
  const std::uint64_t molecules = GetParam();
  const auto model = workload::make_wnsq_trace(molecules, 5, 101);
  const auto report = profile_model(model);
  ASSERT_GE(report.periods.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const double truth = static_cast<double>(model.true_wss[i]);
    const double measured =
        static_cast<double>(report.periods[i].period.wss_bytes);
    // The paper's own accuracy on this pipeline is 80-95%; require the
    // measurement side to be at least that tight.
    EXPECT_NEAR(measured, truth, 0.2 * truth)
        << "input " << molecules << " period " << i;
    EXPECT_TRUE(report.periods[i].boundary_loop.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(PaperScales, WnsqInputs,
                         ::testing::Values(8000, 15625, 32768, 64000));

class OcpInputs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OcpInputs, TwoPeriodsDetectedAndMeasured) {
  const std::uint64_t cells = GetParam();
  const auto model = workload::make_ocp_trace(cells, 5, 202);
  const auto report = profile_model(model);
  ASSERT_GE(report.periods.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const double truth = static_cast<double>(model.true_wss[i]);
    const double measured =
        static_cast<double>(report.periods[i].period.wss_bytes);
    EXPECT_NEAR(measured, truth, 0.2 * truth)
        << "input " << cells << " period " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperScales, OcpInputs,
                         ::testing::Values(514, 1026, 2050, 4098));

TEST(ProfilerPipeline, AnnotationsNameDistinctLoops) {
  const auto model = workload::make_wnsq_trace(8000, 5, 103);
  const auto report = profile_model(model);
  ASSERT_GE(report.annotations.size(), 2u);
  EXPECT_NE(report.annotations[0].loop_name, report.annotations[1].loop_name);
  EXPECT_NE(report.annotations[0].loop_name, "?");
}

TEST(ProfilerPipeline, HighReuseDetectedInPeriods) {
  // Hot/cold accesses revisit the working set heavily: the categorized
  // reuse level of both modelled periods must be high.
  const auto model = workload::make_wnsq_trace(8000, 5, 104);
  const auto report = profile_model(model);
  ASSERT_GE(report.periods.size(), 2u);
  EXPECT_EQ(report.periods[0].period.reuse_level, ReuseLevel::kHigh);
}

}  // namespace
}  // namespace rda
