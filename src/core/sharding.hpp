// Sharded period registry + waitlist for the lock-free admission core.
//
// The single PeriodRegistry/Waitlist pair behind AdmissionCore's one mutex
// is split 16 ways, modelled on how the O(1) scheduler replaced the global
// runqueue_lock with per-CPU runqueues:
//
//   * Registry shards are keyed by the CALLING THREAD's hash, so the calm
//     begin/end hot path of one thread always touches one shard mutex and
//     one budget stripe. Each shard's PeriodRegistry allocates ids in its
//     own residue class (shard s issues s+1, s+17, s+33, …), so a period id
//     names its shard — shard_of_period(id) — without any shared counter.
//
//   * Waitlist shards are keyed by period id. Entries carry a global
//     arrival sequence so the cross-shard merged view (what the wake
//     strategies and the watchdog ladder scan) reconstructs true FIFO
//     order. Mutation of the waitlist only ever happens in the slow lane
//     under AdmissionCore's slow mutex; the one datum the lock-free lane
//     reads — the total entry count, i.e. the "is anybody parked?" Dekker
//     flag — is a seq_cst atomic.
//
// Lock order: AdmissionCore slow mutex → shard mutex. Shard mutexes never
// nest in each other (cross-shard walks lock one shard at a time).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/registry.hpp"
#include "core/waitlist.hpp"

namespace rda::core {

/// Number of registry shards; also the ResourceMonitor stripe count, so a
/// shard's admissions charge "its" budget stripe.
inline constexpr std::uint32_t kNumShards = 16;

/// Fibonacci-hash of the thread id onto a shard. Thread ids are small and
/// sequential; the multiplicative hash spreads neighbours across shards.
inline std::uint32_t shard_of_thread(sim::ThreadId thread) {
  return (static_cast<std::uint32_t>(thread) * 2654435761u) >> 28;
}

/// Shard that issued a period id (ids of shard s are ≡ s+1 mod kNumShards).
inline std::uint32_t shard_of_period(PeriodId id) {
  return static_cast<std::uint32_t>((id - 1) % kNumShards);
}

/// 16 independently locked PeriodRegistry shards.
///
/// Pointer lifetime: find()/find_mutable() return pointers that stay valid
/// until the record is removed (unordered_map node stability), but only the
/// slow lane may dereference them, and only for records it owns — the
/// calling thread's own period, or a parked (waitlisted) period, neither of
/// which the lock-free lane can concurrently remove.
class ShardedRegistry {
 public:
  ShardedRegistry();

  /// Inserts under the calling thread's shard; stamps record.stripe with
  /// the shard index so release discharges the budget stripe the admission
  /// charged. Throws if the thread already has an active period — in which
  /// case the caller's record is left untouched (validate-before-move).
  PeriodId insert(PeriodRecord&& record);

  const PeriodRecord* find(PeriodId id) const;
  PeriodRecord* find_mutable(PeriodId id);

  /// Removes and returns the record; throws util::CheckFailure if the id is
  /// unknown (double pp_end or a forged id).
  PeriodRecord remove(PeriodId id);

  /// Removes and returns the record, or nullopt if the id is unknown —
  /// lets the orphan sweep race a concurrent fast-lane release without
  /// either side throwing: whoever removes the record owns its discharge.
  std::optional<PeriodRecord> try_remove(PeriodId id);

  /// Atomically removes the record iff it is calm (admitted and not
  /// force-oversubscribed). The fast release path claims records this way;
  /// nullopt routes the release to the slow lane.
  std::optional<PeriodRecord> take_if_calm(PeriodId id);

  /// Flips the record's admitted flag; false if the id is unknown.
  bool mark_admitted(PeriodId id);

  std::optional<PeriodId> active_for_thread(sim::ThreadId thread) const;

  /// Total active periods (shard-by-shard sum; exact only at quiescence).
  std::size_t active_count() const;

  /// Merged snapshot for diagnostics, sorted by period id.
  std::vector<PeriodRecord> snapshot() const;

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    PeriodRegistry reg;
  };

  std::array<Shard, kNumShards> shards_;
};

/// Waitlist sharded by period id with a merged FIFO view.
///
/// All mutation happens in the admission slow lane (serialized by the core's
/// slow mutex); no per-shard locking is needed. size() is lock-free: it
/// reads the seq_cst total counter the fast lane uses as its "anybody
/// parked?" Dekker flag.
class ShardedWaitlist {
 public:
  using Entry = Waitlist::Entry;

  void push(Entry entry);

  bool empty() const { return size() == 0; }
  std::size_t size() const { return total_.load(); }

  /// Merged view in arrival (seq) order. Rebuilt lazily after mutations;
  /// indices below refer to positions in this view.
  const std::deque<Entry>& entries() const;

  /// Mutable access for the watchdog's round/rung bookkeeping; the identity
  /// fields (period/thread/process/seq) must not be modified through this.
  Entry& entry_at(std::size_t index);

  /// Removes and returns every entry `admit` accepts, in FIFO order. When
  /// `head_only`, scanning stops at the first rejection.
  std::vector<Entry> drain_admissible(
      const std::function<bool(const Entry&)>& admit, bool head_only);

  /// Removes and returns the entry at `index` (0 = merged head).
  Entry remove_at(std::size_t index);

  /// Re-inserts an entry removed by remove_at at its original FIFO position
  /// (same seq) — used when a selected wake fails its re-acquisition.
  void restore(Entry entry);

  /// Removes all entries of one process (group admission for thread pools).
  std::vector<Entry> remove_process(sim::ProcessId process);

  /// Total pending entries of one process.
  std::size_t count_process(sim::ProcessId process) const;

 private:
  void rebuild() const;
  Entry take(std::uint32_t shard, std::size_t local_index);

  std::array<std::deque<Entry>, kNumShards> shards_;
  std::uint64_t next_seq_ = 1;
  std::atomic<std::size_t> total_{0};

  // Lazily merged FIFO view + locators mapping merged index → (shard,
  // local index). Any mutation (including entry_at handing out a mutable
  // reference) marks it dirty.
  mutable std::deque<Entry> merged_;
  mutable std::vector<std::pair<std::uint32_t, std::size_t>> locators_;
  mutable bool dirty_ = true;
};

}  // namespace rda::core
