#include "sim/cache_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace rda::sim {

LlcModel::LlcModel(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {
  RDA_CHECK(capacity_bytes > 0);
}

LlcModel::Entry& LlcModel::slot(ThreadId thread) {
  RDA_CHECK(thread != kInvalidThread);
  if (thread >= slots_.size()) slots_.resize(thread + 1);
  return slots_[thread];
}

void LlcModel::phase_enter(ThreadId thread, std::uint64_t wss_bytes,
                           double carry_bytes, double occupancy_cap_bytes) {
  Entry& e = slot(thread);
  RDA_CHECK_MSG(!e.active,
                "thread " << thread << " already has an active phase");
  e.wss = static_cast<double>(wss_bytes);
  e.cap = occupancy_cap_bytes > 0.0
              ? occupancy_cap_bytes
              : std::numeric_limits<double>::infinity();
  const double free_bytes =
      std::max(0.0, static_cast<double>(capacity_) - total_occupancy_);
  e.occupancy =
      std::clamp(carry_bytes, 0.0, std::min(e.growth_limit(), free_bytes));
  total_occupancy_ += e.occupancy;
  e.active = true;
  e.active_pos = static_cast<std::uint32_t>(active_.size());
  active_.push_back(thread);
}

double LlcModel::phase_exit(ThreadId thread) {
  RDA_CHECK_MSG(thread < slots_.size() && slots_[thread].active,
                "thread " << thread << " has no active phase");
  Entry& e = slots_[thread];
  const double held = e.occupancy;
  total_occupancy_ -= held;
  if (total_occupancy_ < 0.0) total_occupancy_ = 0.0;  // float dust
  // Swap-remove from the active list; patch the moved thread's back-pointer.
  const ThreadId moved = active_.back();
  active_[e.active_pos] = moved;
  slots_[moved].active_pos = e.active_pos;
  active_.pop_back();
  e.active = false;
  e.occupancy = 0.0;
  return held;
}

bool LlcModel::registered(ThreadId thread) const {
  return find(thread) != nullptr;
}

double LlcModel::occupancy_bytes(ThreadId thread) const {
  const Entry* e = find(thread);
  return e == nullptr ? 0.0 : e->occupancy;
}

double LlcModel::resident_fraction(ThreadId thread) const {
  const Entry* e = find(thread);
  if (e == nullptr) return 0.0;
  if (e->wss <= 0.0) return 1.0;
  return std::clamp(e->occupancy / e->wss, 0.0, 1.0);
}

void LlcModel::evict_proportional(double bytes) {
  if (bytes <= 0.0 || total_occupancy_ <= 0.0) return;
  const double scale =
      std::max(0.0, 1.0 - bytes / total_occupancy_);
  double total = 0.0;
  for (const ThreadId tid : active_) {
    Entry& entry = slots_[tid];
    entry.occupancy *= scale;
    total += entry.occupancy;
  }
  total_occupancy_ = total;
}

void LlcModel::advance(const std::vector<FillTraffic>& fills) {
  const double cap = static_cast<double>(capacity_);

  // 1. Streaming traffic sweeps through the cache. Each streamed line
  //    displaces a resident line with probability equal to the occupancy
  //    density, which itself decays as lines are lost: integrating
  //    dO/dS = -O/C gives exponential decay in the streamed volume.
  double streaming_total = 0.0;
  for (const FillTraffic& f : fills) streaming_total += f.streaming_bytes;
  if (streaming_total > 0.0 && total_occupancy_ > 0.0) {
    const double survive = std::exp(-streaming_total / cap);
    evict_proportional(total_occupancy_ * (1.0 - survive));
  }

  // 2. Residency fills grow each running thread toward its working set.
  for (const FillTraffic& f : fills) {
    RDA_CHECK_MSG(f.thread < slots_.size() && slots_[f.thread].active,
                  "fill for thread " << f.thread << " with no active phase");
    Entry& e = slots_[f.thread];
    const double grow = std::min(
        f.residency_bytes, std::max(0.0, e.growth_limit() - e.occupancy));
    e.occupancy += grow;
    total_occupancy_ += grow;
  }

  // 3. Capacity overflow: the newly-filled lines landed on someone; evict
  //    proportionally until the cache fits again.
  if (total_occupancy_ > cap) {
    evict_proportional(total_occupancy_ - cap);
  }
}

void LlcModel::check_invariants() const {
  double total = 0.0;
  for (const ThreadId tid : active_) {
    const Entry& entry = slots_[tid];
    RDA_CHECK_MSG(entry.occupancy >= -1e-6,
                  "negative occupancy for thread " << tid);
    RDA_CHECK_MSG(entry.occupancy <= entry.wss + 1e-6,
                  "occupancy exceeds wss for thread " << tid);
    total += entry.occupancy;
  }
  RDA_CHECK_MSG(std::fabs(total - total_occupancy_) <=
                    1e-6 * std::max(1.0, total),
                "occupancy sum drifted");
  RDA_CHECK_MSG(total_occupancy_ <=
                    static_cast<double>(capacity_) * (1.0 + 1e-9) + 1e-6,
                "total occupancy exceeds capacity");
}

}  // namespace rda::sim
