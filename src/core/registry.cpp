#include "core/registry.hpp"

#include "util/check.hpp"

namespace rda::core {

PeriodId PeriodRegistry::insert(PeriodRecord record) {
  for (const ResourceDemand& d : record.demands) {
    RDA_CHECK_MSG(d.amount >= 0.0, "negative period demand on "
                                       << to_string(d.resource));
  }
  RDA_CHECK_MSG(by_thread_.count(record.thread) == 0,
                "thread " << record.thread
                          << " already has an active period; periods do not "
                             "nest");
  record.id = next_id_++;
  const PeriodId id = record.id;
  by_thread_.emplace(record.thread, id);
  records_.emplace(id, std::move(record));
  return id;
}

const PeriodRecord* PeriodRegistry::find(PeriodId id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

PeriodRecord* PeriodRegistry::find_mutable(PeriodId id) {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

PeriodRecord PeriodRegistry::remove(PeriodId id) {
  const auto it = records_.find(id);
  RDA_CHECK_MSG(it != records_.end(),
                "pp_end with unknown period id " << id);
  PeriodRecord record = std::move(it->second);
  records_.erase(it);
  by_thread_.erase(record.thread);
  return record;
}

std::optional<PeriodId> PeriodRegistry::active_for_thread(
    sim::ThreadId thread) const {
  const auto it = by_thread_.find(thread);
  if (it == by_thread_.end()) return std::nullopt;
  return it->second;
}

std::vector<PeriodRecord> PeriodRegistry::snapshot() const {
  std::vector<PeriodRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) {
    (void)id;
    out.push_back(record);
  }
  return out;
}

}  // namespace rda::core
