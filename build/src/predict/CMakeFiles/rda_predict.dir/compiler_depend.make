# Empty compiler generated dependencies file for rda_predict.
# This may be replaced when dependencies are built.
